"""Plant and peripherals of the water-tank target."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ModelError
from repro.watertank import constants as C

__all__ = ["TankState", "TankPlant", "TankSensorSuite", "InflowProfile"]


@dataclass(frozen=True)
class InflowProfile:
    """Deterministic inflow disturbance: base + square-wave steps."""

    base_m3s: float
    step_m3s: float
    period_s: float = C.DISTURBANCE_PERIOD_S

    def __post_init__(self) -> None:
        if self.base_m3s < 0 or self.step_m3s < 0 or self.period_s <= 0:
            raise ModelError("invalid inflow profile parameters")

    def inflow_at(self, time_s: float) -> float:
        phase = (time_s % self.period_s) / self.period_s
        return self.base_m3s + (self.step_m3s if phase >= 0.5 else 0.0)


@dataclass
class TankState:
    time_s: float = 0.0
    level_m: float = C.LEVEL_SETPOINT_M
    valve_pos: float = 0.0  #: actual valve opening, 0..1
    inflow_m3s: float = 0.0
    outflow_m3s: float = 0.0


class TankPlant:
    """Mass balance of the vessel with a first-order valve actuator."""

    def __init__(self, profile: InflowProfile):
        self.profile = profile
        self.state = TankState()
        self.peak_level_m = self.state.level_m
        self.min_level_m = self.state.level_m
        #: cumulative inflow volume, drives the flow-meter pulses
        self.total_inflow_m3 = 0.0

    def reset(self) -> None:
        self.state = TankState()
        self.peak_level_m = self.state.level_m
        self.min_level_m = self.state.level_m
        self.total_inflow_m3 = 0.0

    def step(self, commanded_valve: float, dt_s: float = C.TICK_S) -> TankState:
        s = self.state
        commanded = max(0.0, min(1.0, commanded_valve))
        s.valve_pos += (commanded - s.valve_pos) * (dt_s / C.VALVE_TAU_S)
        s.inflow_m3s = self.profile.inflow_at(s.time_s)
        s.outflow_m3s = (
            C.OUTFLOW_CV * s.valve_pos * math.sqrt(max(0.0, s.level_m))
        )
        s.level_m += (s.inflow_m3s - s.outflow_m3s) * dt_s / C.TANK_AREA_M2
        s.level_m = max(0.0, min(C.TANK_HEIGHT_M, s.level_m))
        self.total_inflow_m3 += s.inflow_m3s * dt_s
        self.peak_level_m = max(self.peak_level_m, s.level_m)
        self.min_level_m = min(self.min_level_m, s.level_m)
        s.time_s += dt_s
        return s

    def snapshot(self) -> dict:
        """Tank state plus accumulators, for checkpoint capture."""
        s = self.state
        return {
            "time_s": s.time_s,
            "level_m": s.level_m,
            "valve_pos": s.valve_pos,
            "inflow_m3s": s.inflow_m3s,
            "outflow_m3s": s.outflow_m3s,
            "peak_level_m": self.peak_level_m,
            "min_level_m": self.min_level_m,
            "total_inflow_m3": self.total_inflow_m3,
        }

    def restore(self, snapshot: dict) -> None:
        values = dict(snapshot)
        self.peak_level_m = values.pop("peak_level_m")
        self.min_level_m = values.pop("min_level_m")
        self.total_inflow_m3 = values.pop("total_inflow_m3")
        self.state = TankState(**values)


@dataclass
class TankSensorSuite:
    """Level ADC, inflow pulse counter, valve/alarm output registers."""

    lvl_adc: int = 0
    flow_cnt: int = 0
    _pulse_mirror: int = 0

    def reset(self) -> None:
        self.lvl_adc = 0
        self.flow_cnt = 0
        self._pulse_mirror = 0

    def advance(self, level_m: float, total_inflow_m3: float) -> None:
        full = (1 << C.LVL_ADC_BITS) - 1
        ratio = max(0.0, min(1.0, level_m / C.TANK_HEIGHT_M))
        self.lvl_adc = int(round(ratio * full))
        pulses = int(math.floor(total_inflow_m3 * C.PULSES_PER_M3))
        if pulses > self._pulse_mirror:
            self.flow_cnt = (
                self.flow_cnt + (pulses - self._pulse_mirror)
            ) & ((1 << C.FLOW_CNT_BITS) - 1)
            self._pulse_mirror = pulses

    def snapshot(self) -> dict:
        """Every register (incl. the pulse mirror), for checkpoint capture."""
        return {
            "lvl_adc": self.lvl_adc,
            "flow_cnt": self.flow_cnt,
            "_pulse_mirror": self._pulse_mirror,
        }

    def restore(self, snapshot: dict) -> None:
        for name, value in snapshot.items():
            setattr(self, name, value)

    @staticmethod
    def commanded_valve(valve_pos_register: int) -> float:
        full = (1 << C.VALVE_POS_BITS) - 1
        return max(0.0, min(1.0, valve_pos_register / full))
