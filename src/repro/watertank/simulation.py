"""Closed-loop water-tank mission simulation.

Exposes the same hook API as the arrestment simulator
(``add_pre_tick`` / ``add_marshal`` / ``add_local_write`` /
``add_post_invoke`` / ``add_post_tick``, ``corrupt_input``,
``executor``, ``run()``), so every campaign driver of :mod:`repro.fi`
works against this target unchanged.

The mission is fixed-duration regulation: a run *completes* when the
full mission has been simulated (so every injection within the mission
is active), and it *fails* if any of the vessel's safety criteria was
violated: overflow (level >= 3.5 m), dry-run (level <= 0.5 m), or a
missed alarm (level above 3.0 m for more than a second with the alarm
line deasserted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.model.signal import Number
from repro.model.system import (
    ExecutorHooks,
    InvocationRecord,
    SlotSchedule,
    SystemExecutor,
    SystemModel,
)
from repro.target.simulation import SignalTraces
from repro.watertank import constants as C
from repro.watertank.physics import InflowProfile, TankPlant, TankSensorSuite
from repro.watertank.testcases import TankTestCase
from repro.watertank.wiring import build_watertank_system

__all__ = ["TankVerdict", "TankMissionResult", "WaterTankSimulator"]


@dataclass
class TankVerdict:
    """Safety outcome of one mission."""

    failed: bool
    kinds: List[str] = field(default_factory=list)
    peak_level_m: float = 0.0
    min_level_m: float = 0.0

    def describe(self) -> str:
        if not self.failed:
            return (
                f"OK (level {self.min_level_m:.2f}..{self.peak_level_m:.2f} m)"
            )
        return (
            f"FAILURE [{', '.join(self.kinds)}] "
            f"(level {self.min_level_m:.2f}..{self.peak_level_m:.2f} m)"
        )


@dataclass
class TankMissionResult:
    test_case: TankTestCase
    ticks_run: int
    completion_tick: Optional[int]
    verdict: TankVerdict
    traces: SignalTraces

    @property
    def arrested(self) -> bool:  # campaign-compat alias: mission done
        return self.completion_tick is not None

    @property
    def failed(self) -> bool:
        return self.verdict.failed


class WaterTankSimulator:
    """One fixed-duration regulation mission."""

    def __init__(
        self,
        test_case: TankTestCase,
        mission_ticks: int = C.MISSION_TICKS,
        record_traces: bool = True,
    ):
        self.test_case = test_case
        self.mission_ticks = mission_ticks
        self.record_traces = record_traces
        self.system: SystemModel = build_watertank_system()
        schedule = SlotSchedule(C.N_SLOTS)
        schedule.every_tick("TIMER")
        for module, slot in C.MODULE_SLOTS.items():
            schedule.assign(slot, module)
        self._pre_tick: List[Callable[[int], None]] = []
        self._marshal: List[
            Callable[[str, Dict[str, Number]], Dict[str, Number]]
        ] = []
        self._local_write: List[Callable[[str, str, Number], Number]] = []
        self._post_invoke: List[Callable[[InvocationRecord], None]] = []
        self._post_tick: List[Callable[[int], None]] = []
        hooks = ExecutorHooks(
            pre_tick=self._run_pre_tick,
            marshal=self._run_marshal,
            local_write=self._run_local_write,
            post_invoke=self._run_post_invoke,
            post_tick=self._run_post_tick,
        )
        self.executor = SystemExecutor(self.system, schedule, hooks)
        self.plant = TankPlant(
            InflowProfile(test_case.base_inflow_m3s, test_case.step_m3s)
        )
        self.sensors = TankSensorSuite()
        self.traces = SignalTraces()
        self._slot_map: Dict[int, List[str]] = {}
        for module, slot in C.MODULE_SLOTS.items():
            self._slot_map.setdefault(slot, []).append(module)
        #: consecutive ticks with level above the alarm threshold while
        #: the alarm line is deasserted
        self._missed_alarm_ticks = 0
        self._failure_kinds: List[str] = []

    # ------------------------------------------------------------------
    # Hook plumbing (same shape as ArrestmentSimulator).
    # ------------------------------------------------------------------
    def add_pre_tick(self, handler) -> None:
        self._pre_tick.append(handler)

    def add_marshal(self, handler) -> None:
        self._marshal.append(handler)

    def add_local_write(self, handler) -> None:
        self._local_write.append(handler)

    def add_post_invoke(self, handler) -> None:
        self._post_invoke.append(handler)

    def add_post_tick(self, handler) -> None:
        self._post_tick.append(handler)

    def _run_pre_tick(self, tick: int) -> None:
        for handler in self._pre_tick:
            handler(tick)

    def _run_marshal(self, module, args):
        for handler in self._marshal:
            args = handler(module, args)
        return args

    def _run_local_write(self, module, name, value):
        for handler in self._local_write:
            value = handler(module, name, value)
        return value

    def _run_post_invoke(self, record: InvocationRecord) -> None:
        if self.record_traces:
            for port, value in record.outputs.items():
                signal = self.system.signal_of_output(record.module, port)
                self.traces.record(signal, record.tick, value)
        for handler in self._post_invoke:
            handler(record)

    def _run_post_tick(self, tick: int) -> None:
        for handler in self._post_tick:
            handler(tick)

    # ------------------------------------------------------------------
    # Injection support.
    # ------------------------------------------------------------------
    _REGISTER_OF = {"LVL_ADC": "lvl_adc", "FLOW_CNT": "flow_cnt"}

    def corrupt_input(self, signal: str, bit: int) -> Tuple[Number, Number]:
        """Persistent register corruption (see the arrestment
        simulator's corrupt_input for the semantics)."""
        attr = self._REGISTER_OF[signal]
        spec = self.system.signal(signal)
        before = getattr(self.sensors, attr)
        after = spec.flip_bit(before, bit)
        setattr(self.sensors, attr, after)
        self.executor.store.poke(signal, after)
        return before, after

    # ------------------------------------------------------------------
    # The mission loop.
    # ------------------------------------------------------------------
    def _write_sensor_inputs(self, tick: int) -> None:
        store = self.executor.store
        for signal, attr in self._REGISTER_OF.items():
            store[signal] = getattr(self.sensors, attr)
            if self.record_traces:
                self.traces.record(signal, tick, store[signal])

    def _observe_safety(self, tick: int) -> None:
        level = self.plant.state.level_m
        if level >= C.MAX_LEVEL_M and "overflow" not in self._failure_kinds:
            self._failure_kinds.append("overflow")
        if level <= C.MIN_LEVEL_M and "dry_run" not in self._failure_kinds:
            self._failure_kinds.append("dry_run")
        alarm = self.executor.store["ALARM_OUT"]
        if level > C.ALARM_LEVEL_M and not alarm:
            self._missed_alarm_ticks += 1
            if (
                self._missed_alarm_ticks > C.ALARM_GRACE_TICKS
                and "missed_alarm" not in self._failure_kinds
            ):
                self._failure_kinds.append("missed_alarm")
        else:
            self._missed_alarm_ticks = 0

    def run(self) -> TankMissionResult:
        executor = self.executor
        store = executor.store
        for tick in range(self.mission_ticks):
            self.sensors.advance(
                self.plant.state.level_m, self.plant.total_inflow_m3
            )
            self._write_sensor_inputs(tick)
            executor.begin_tick()
            executor.invoke("TIMER")
            slot = store["tick_nbr"]
            for module in self._slot_map.get(slot, ()):
                executor.invoke(module)
            executor.end_tick()
            commanded = TankSensorSuite.commanded_valve(store["VALVE_POS"])
            self.plant.step(commanded)
            self._observe_safety(tick)
        return TankMissionResult(
            test_case=self.test_case,
            ticks_run=self.mission_ticks,
            completion_tick=self.mission_ticks - 1,
            verdict=TankVerdict(
                failed=bool(self._failure_kinds),
                kinds=list(self._failure_kinds),
                peak_level_m=self.plant.peak_level_m,
                min_level_m=self.plant.min_level_m,
            ),
            traces=self.traces,
        )
