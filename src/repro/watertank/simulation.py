"""Closed-loop water-tank mission simulation.

Exposes the same hook API as the arrestment simulator
(``add_pre_tick`` / ``add_marshal`` / ``add_local_write`` /
``add_post_invoke`` / ``add_post_tick``, ``corrupt_input``,
``executor``, ``run()``), so every campaign driver of :mod:`repro.fi`
works against this target unchanged.

The mission is fixed-duration regulation: a run *completes* when the
full mission has been simulated (so every injection within the mission
is active), and it *fails* if any of the vessel's safety criteria was
violated: overflow (level >= 3.5 m), dry-run (level <= 0.5 m), or a
missed alarm (level above 3.0 m for more than a second with the alarm
line deasserted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.model.signal import Number
from repro.model.system import (
    ExecutorHooks,
    InvocationRecord,
    SlotSchedule,
    SystemExecutor,
    SystemModel,
)
from repro.target.simulation import SignalTraces, SimulatorState
from repro.watertank import constants as C
from repro.watertank.physics import InflowProfile, TankPlant, TankSensorSuite
from repro.watertank.testcases import TankTestCase
from repro.watertank.wiring import build_watertank_system

__all__ = ["TankVerdict", "TankMissionResult", "WaterTankSimulator"]


@dataclass
class TankVerdict:
    """Safety outcome of one mission."""

    failed: bool
    kinds: List[str] = field(default_factory=list)
    peak_level_m: float = 0.0
    min_level_m: float = 0.0

    def describe(self) -> str:
        if not self.failed:
            return (
                f"OK (level {self.min_level_m:.2f}..{self.peak_level_m:.2f} m)"
            )
        return (
            f"FAILURE [{', '.join(self.kinds)}] "
            f"(level {self.min_level_m:.2f}..{self.peak_level_m:.2f} m)"
        )


@dataclass
class TankMissionResult:
    test_case: TankTestCase
    ticks_run: int
    completion_tick: Optional[int]
    verdict: TankVerdict
    traces: SignalTraces

    @property
    def arrested(self) -> bool:  # campaign-compat alias: mission done
        return self.completion_tick is not None

    @property
    def failed(self) -> bool:
        return self.verdict.failed


class WaterTankSimulator:
    """One fixed-duration regulation mission."""

    def __init__(
        self,
        test_case: TankTestCase,
        mission_ticks: int = C.MISSION_TICKS,
        record_traces: bool = True,
    ):
        self.test_case = test_case
        self.mission_ticks = mission_ticks
        self._record_traces = record_traces
        self.system: SystemModel = build_watertank_system()
        schedule = SlotSchedule(C.N_SLOTS)
        schedule.every_tick("TIMER")
        for module, slot in C.MODULE_SLOTS.items():
            schedule.assign(slot, module)
        self._pre_tick: List[Callable[[int], None]] = []
        self._marshal: List[
            Callable[[str, Dict[str, Number]], Dict[str, Number]]
        ] = []
        self._local_write: List[Callable[[str, str, Number], Number]] = []
        self._post_invoke: List[Callable[[InvocationRecord], None]] = []
        self._post_tick: List[Callable[[int], None]] = []
        self._hooks = ExecutorHooks()
        self.executor = SystemExecutor(self.system, schedule, self._hooks)
        self.plant = TankPlant(
            InflowProfile(test_case.base_inflow_m3s, test_case.step_m3s)
        )
        self.sensors = TankSensorSuite()
        self.traces = SignalTraces()
        self._slot_map: Dict[int, List[str]] = {}
        for module, slot in C.MODULE_SLOTS.items():
            self._slot_map.setdefault(slot, []).append(module)
        #: consecutive ticks with level above the alarm threshold while
        #: the alarm line is deasserted
        self._missed_alarm_ticks = 0
        self._failure_kinds: List[str] = []
        self._start_tick = 0
        self._tick_probe: Optional[Callable[[int], bool]] = None
        self._rewire_hooks()

    # ------------------------------------------------------------------
    # Hook plumbing (same shape as ArrestmentSimulator).
    # ------------------------------------------------------------------
    def _rewire_hooks(self) -> None:
        """Install only the dispatchers with work to do (see the
        arrestment simulator: empty handler lists keep the executor's
        ``hook is None`` fast path)."""
        hooks = self._hooks
        hooks.pre_tick = self._run_pre_tick if self._pre_tick else None
        hooks.marshal = self._run_marshal if self._marshal else None
        hooks.local_write = (
            self._run_local_write if self._local_write else None
        )
        hooks.post_invoke = (
            self._run_post_invoke
            if self._record_traces or self._post_invoke
            else None
        )
        hooks.post_tick = self._run_post_tick if self._post_tick else None

    @property
    def record_traces(self) -> bool:
        return self._record_traces

    @record_traces.setter
    def record_traces(self, enabled: bool) -> None:
        self._record_traces = bool(enabled)
        self._rewire_hooks()

    def add_pre_tick(self, handler) -> None:
        self._pre_tick.append(handler)
        self._rewire_hooks()

    def add_marshal(self, handler) -> None:
        self._marshal.append(handler)
        self._rewire_hooks()

    def add_local_write(self, handler) -> None:
        self._local_write.append(handler)
        self._rewire_hooks()

    def add_post_invoke(self, handler) -> None:
        self._post_invoke.append(handler)
        self._rewire_hooks()

    def add_post_tick(self, handler) -> None:
        self._post_tick.append(handler)
        self._rewire_hooks()

    def set_tick_probe(self, probe: Optional[Callable[[int], bool]]) -> None:
        """Install a top-of-tick callable; returning True stops the run
        (see ArrestmentSimulator.set_tick_probe)."""
        self._tick_probe = probe

    def _run_pre_tick(self, tick: int) -> None:
        for handler in self._pre_tick:
            handler(tick)

    def _run_marshal(self, module, args):
        for handler in self._marshal:
            args = handler(module, args)
        return args

    def _run_local_write(self, module, name, value):
        for handler in self._local_write:
            value = handler(module, name, value)
        return value

    def _run_post_invoke(self, record: InvocationRecord) -> None:
        if self._record_traces:
            for port, value in record.outputs.items():
                signal = self.system.signal_of_output(record.module, port)
                self.traces.record(signal, record.tick, value)
        for handler in self._post_invoke:
            handler(record)

    def _run_post_tick(self, tick: int) -> None:
        for handler in self._post_tick:
            handler(tick)

    # ------------------------------------------------------------------
    # Injection support.
    # ------------------------------------------------------------------
    _REGISTER_OF = {"LVL_ADC": "lvl_adc", "FLOW_CNT": "flow_cnt"}

    def corrupt_input(self, signal: str, bit: int) -> Tuple[Number, Number]:
        """Persistent register corruption (see the arrestment
        simulator's corrupt_input for the semantics)."""
        attr = self._REGISTER_OF[signal]
        spec = self.system.signal(signal)
        before = getattr(self.sensors, attr)
        after = spec.flip_bit(before, bit)
        setattr(self.sensors, attr, after)
        self.executor.store.poke(signal, after)
        return before, after

    # ------------------------------------------------------------------
    # The mission loop.
    # ------------------------------------------------------------------
    def _write_sensor_inputs(self, tick: int) -> None:
        store = self.executor.store
        for signal, attr in self._REGISTER_OF.items():
            store[signal] = getattr(self.sensors, attr)
            if self._record_traces:
                self.traces.record(signal, tick, store[signal])

    def _observe_safety(self, tick: int) -> None:
        level = self.plant.state.level_m
        if level >= C.MAX_LEVEL_M and "overflow" not in self._failure_kinds:
            self._failure_kinds.append("overflow")
        if level <= C.MIN_LEVEL_M and "dry_run" not in self._failure_kinds:
            self._failure_kinds.append("dry_run")
        alarm = self.executor.store["ALARM_OUT"]
        if level > C.ALARM_LEVEL_M and not alarm:
            self._missed_alarm_ticks += 1
            if (
                self._missed_alarm_ticks > C.ALARM_GRACE_TICKS
                and "missed_alarm" not in self._failure_kinds
            ):
                self._failure_kinds.append("missed_alarm")
        else:
            self._missed_alarm_ticks = 0

    # ------------------------------------------------------------------
    # Checkpointing (same contract as ArrestmentSimulator).
    # ------------------------------------------------------------------
    def capture_state(self) -> SimulatorState:
        """Freeze the full closed loop at the top of the current tick."""
        return SimulatorState(
            tick=self.executor.tick,
            signals=self.executor.store.snapshot(),
            modules={
                module.name: module.state.snapshot()
                for module in self.system.modules()
            },
            plant=self.plant.snapshot(),
            sensors=self.sensors.snapshot(),
            classifier=None,
            loop={
                "missed_alarm_ticks": self._missed_alarm_ticks,
                "failure_kinds": tuple(self._failure_kinds),
            },
            trace_lengths=self.traces.lengths() if self._record_traces else {},
            traces=self.traces if self._record_traces else None,
        )

    def restore_state(
        self, state: SimulatorState, restore_traces: bool = True
    ) -> None:
        """Resume from a :meth:`capture_state` snapshot (see the
        arrestment simulator for the contract)."""
        self.executor.tick = state.tick
        self._start_tick = state.tick
        self.executor.store.restore(state.signals)
        for module in self.system.modules():
            module.state.restore(state.modules[module.name])
        self.plant.restore(state.plant)
        self.sensors.restore(state.sensors)
        loop = state.loop
        self._missed_alarm_ticks = loop["missed_alarm_ticks"]
        self._failure_kinds = list(loop["failure_kinds"])
        if restore_traces and self._record_traces and state.traces is not None:
            self.traces.splice_prefix(state.traces, state.trace_lengths)

    def run(self) -> TankMissionResult:
        executor = self.executor
        store = executor.store
        probe = self._tick_probe
        tick = self._start_tick
        while tick < self.mission_ticks:
            if probe is not None and probe(tick):
                break
            self.sensors.advance(
                self.plant.state.level_m, self.plant.total_inflow_m3
            )
            self._write_sensor_inputs(tick)
            executor.begin_tick()
            executor.invoke("TIMER")
            slot = store["tick_nbr"]
            for module in self._slot_map.get(slot, ()):
                executor.invoke(module)
            executor.end_tick()
            commanded = TankSensorSuite.commanded_valve(store["VALVE_POS"])
            self.plant.step(commanded)
            self._observe_safety(tick)
            tick += 1
        return TankMissionResult(
            test_case=self.test_case,
            ticks_run=self.mission_ticks,
            completion_tick=self.mission_ticks - 1,
            verdict=TankVerdict(
                failed=bool(self._failure_kinds),
                kinds=list(self._failure_kinds),
                peak_level_m=self.plant.peak_level_m,
                min_level_m=self.plant.min_level_m,
            ),
            traces=self.traces,
        )
