"""The water-tank level-control target — the framework's second system.

The paper's future work proposes validating the framework on alternate
targets; this package is a complete second target with a different
structure (parallel sensor chains, feed-forward control, two system
outputs including a boolean alarm line) and a different mission type
(fixed-duration regulation instead of a terminating arrestment).  Its
simulator exposes the same hook API as the arrestment simulator, so
every campaign driver works against it unchanged.
"""

from repro.watertank import constants
from repro.watertank.catalogue import (
    TANK_EA_BY_NAME,
    TANK_EA_BY_SIGNAL,
    tank_assertions,
)
from repro.watertank.modules import Alarm, Ctrl, FlowS, LevelS, Timer, ValveA
from repro.watertank.physics import (
    InflowProfile,
    TankPlant,
    TankSensorSuite,
    TankState,
)
from repro.watertank.simulation import (
    TankMissionResult,
    TankVerdict,
    WaterTankSimulator,
)
from repro.watertank.testcases import TankTestCase, standard_tank_cases
from repro.watertank.wiring import TANK_SIGNAL_SPECS, build_watertank_system

__all__ = [
    "Alarm",
    "Ctrl",
    "FlowS",
    "InflowProfile",
    "LevelS",
    "TANK_EA_BY_NAME",
    "TANK_EA_BY_SIGNAL",
    "TANK_SIGNAL_SPECS",
    "TankMissionResult",
    "TankPlant",
    "TankSensorSuite",
    "TankState",
    "TankTestCase",
    "TankVerdict",
    "Timer",
    "ValveA",
    "WaterTankSimulator",
    "build_watertank_system",
    "constants",
    "standard_tank_cases",
    "tank_assertions",
]
