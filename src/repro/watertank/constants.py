"""Constants of the water-tank level-control target.

The paper's future work proposes "applying the analysis framework on
alternate target systems in order to validate the generalized
applicability of the obtained results".  This package is that
alternate target: an industrial water-tank (buffer vessel) level
controller.  It is deliberately *structurally different* from the
arrestment system:

* two parallel sensor chains (level and inflow) instead of one;
* a feed-forward term in the controller;
* **two system outputs** — the valve command and a safety alarm line —
  so impact and criticality genuinely differ (the alarm output is a
  boolean, exercising the EA catalogue's known blind spot at system
  level);
* a *continuous* mission (fixed-duration regulation under disturbance)
  instead of a terminating one (an arrestment).
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Scheduling.
# ----------------------------------------------------------------------
#: base scheduler tick (10 ms — level dynamics are slow)
TICK_S = 0.010
#: slots per cycle (cycle = 100 ms)
N_SLOTS = 10
#: slot assignment (TIMER runs every tick)
MODULE_SLOTS = {
    "LEVEL_S": 1,
    "FLOW_S": 3,
    "CTRL": 5,
    "ALARM": 6,
    "VALVE_A": 8,
}
#: mission duration in ticks (60 s)
MISSION_TICKS = 6000

# ----------------------------------------------------------------------
# Plant.
# ----------------------------------------------------------------------
#: tank cross-section (m^2)
TANK_AREA_M2 = 2.0
#: physical tank height (m); also the level sensor's full scale
TANK_HEIGHT_M = 4.0
#: initial level (m) — the regulation setpoint
LEVEL_SETPOINT_M = 2.0
#: outflow coefficient: q_out = CV * valve_pos * sqrt(level)  (m^3/s);
#: sized so the fully open valve passes ~1.4x the worst-case inflow
OUTFLOW_CV = 0.060
#: valve actuator first-order lag (s)
VALVE_TAU_S = 0.8

# ----------------------------------------------------------------------
# Failure criteria (the vessel's safety case).
# ----------------------------------------------------------------------
#: overflow limit: level must stay below this (m)
MAX_LEVEL_M = 3.5
#: dry-run limit: level must stay above this (m)
MIN_LEVEL_M = 0.5
#: the alarm line must be asserted whenever level exceeds this (m)...
ALARM_LEVEL_M = 3.0
#: ...for longer than this many ticks (missed-alarm failure)
ALARM_GRACE_TICKS = 100

# ----------------------------------------------------------------------
# Hardware registers.
# ----------------------------------------------------------------------
#: level sensor ADC resolution (bits), full scale = TANK_HEIGHT_M
LVL_ADC_BITS = 10
#: inflow flow-meter pulse counter width (bits), 1 pulse per litre
FLOW_CNT_BITS = 8
#: pulses per cubic meter of inflow
PULSES_PER_M3 = 1000.0
#: valve position register width (bits)
VALVE_POS_BITS = 12

# ----------------------------------------------------------------------
# Software scaling and control.
# ----------------------------------------------------------------------
#: working full-scale of the 16-bit internal signals
VALUE_FULL_SCALE = 65535
#: level_f counts per meter (16-bit over the tank height)
LEVEL_COUNTS_PER_M = VALUE_FULL_SCALE / TANK_HEIGHT_M
#: regulation setpoint in level_f counts
LEVEL_SETPOINT_COUNTS = int(LEVEL_SETPOINT_M * LEVEL_COUNTS_PER_M)
#: alarm threshold in level_f counts, with hysteresis
ALARM_ON_COUNTS = int(ALARM_LEVEL_M * LEVEL_COUNTS_PER_M)
ALARM_OFF_COUNTS = int((ALARM_LEVEL_M - 0.2) * LEVEL_COUNTS_PER_M)
#: PI gains (fixed point /256) for the level loop
CTRL_KP_NUM = 160
CTRL_KI_NUM = 6
CTRL_INTEG_CLAMP = 48000
#: feed-forward gain: valve counts per inflow_rate count (/256).
#: calibrated so the feed-forward alone commands the steady-state
#: valve opening for the measured inflow (v = q / (CV*sqrt(L_set)))
CTRL_FF_NUM = 3093
#: LEVEL_S plausibility gate (counts per invocation) and quantum
LEVEL_MAX_JUMP = 2000
LEVEL_QUANTUM = 256
#: FLOW_S rate window (invocations)
FLOW_WINDOW = 5

# ----------------------------------------------------------------------
# Test cases: deterministic inflow profiles.
# ----------------------------------------------------------------------
#: base inflows (m^3/s)
TEST_BASE_INFLOWS = (0.020, 0.030, 0.040)
#: disturbance step amplitudes (m^3/s), square wave of 10 s period
TEST_STEP_AMPLITUDES = (0.000, 0.010, 0.022)
#: disturbance square-wave period (s)
DISTURBANCE_PERIOD_S = 10.0
