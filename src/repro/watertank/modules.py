"""The six software modules of the water-tank controller.

Structure (signals in parentheses):

* ``TIMER``   — in: tick_nbr; out: tick_nbr, ticks
* ``LEVEL_S`` — in: LVL_ADC; out: level_f
* ``FLOW_S``  — in: FLOW_CNT; out: inflow_rate
* ``CTRL``    — in: level_f, inflow_rate, ticks; out: valve_cmd
* ``ALARM``   — in: level_f; out: ALARM_OUT (system output #2)
* ``VALVE_A`` — in: valve_cmd; out: VALVE_POS (system output #1)

The same defensive embedded idioms as the arrestment target, arranged
differently: a filtered measurement chain, a pulse-counting chain with
wrap-around deltas, a PI + feed-forward regulator, a hysteresis alarm
latch, and a quantizing actuator stage.
"""

from __future__ import annotations

from typing import Dict

from repro.model.module import CellSpec, ExecutionContext, Module
from repro.model.signal import Number, SignalType
from repro.watertank import constants as C

__all__ = ["Timer", "LevelS", "FlowS", "Ctrl", "Alarm", "ValveA"]

_U8 = dict(width=8, cell_type=SignalType.UINT)
_U16 = dict(width=16, cell_type=SignalType.UINT)
_I32 = dict(width=32, cell_type=SignalType.INT)
_BOOL = dict(width=8, cell_type=SignalType.BOOL)


class Timer(Module):
    """Time base: slot number (successor table) and tick counter."""

    INPUTS = ("tick_nbr",)
    OUTPUTS = ("tick_nbr", "ticks")
    STATE = (
        CellSpec("ticks", **_U16),
        *[
            CellSpec(f"succ{j}", width=8, cell_type=SignalType.UINT,
                     initial=(j + 1) % C.N_SLOTS)
            for j in range(C.N_SLOTS)
        ],
    )
    LOCALS = (CellSpec("next_slot", **_U16),)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        slot_in = ctx.arg("tick_nbr")
        if slot_in < C.N_SLOTS:
            next_slot = ctx.set_local(
                "next_slot", self.state[f"succ{slot_in % C.N_SLOTS}"]
            )
        else:
            next_slot = ctx.set_local("next_slot", 0)
        self.state["ticks"] = self.state["ticks"] + 1
        return {"tick_nbr": next_slot, "ticks": self.state["ticks"]}


class LevelS(Module):
    """Level sensing: gated, median-filtered, quantized measurement."""

    INPUTS = ("LVL_ADC",)
    OUTPUTS = ("level_f",)
    MAX_REJECT_STREAK = 5
    # the filter history and reference are commissioned at the
    # setpoint level, like the calibrated instrument they model
    STATE = (
        *[
            CellSpec(f"h{j}", **_U16, initial=C.LEVEL_SETPOINT_COUNTS)
            for j in range(3)
        ],
        CellSpec("last_good", **_U16,
                 initial=C.LEVEL_SETPOINT_COUNTS),
        CellSpec("rejects", **_U8),
    )
    LOCALS = (
        CellSpec("scaled", **_U16),
        CellSpec("sample", **_U16),
    )

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        state = self.state
        scaled = ctx.set_local(
            "scaled", ctx.arg("LVL_ADC") << (16 - C.LVL_ADC_BITS)
        )
        if abs(scaled - state["last_good"]) > C.LEVEL_MAX_JUMP:
            state["rejects"] = state["rejects"] + 1
            if state["rejects"] > self.MAX_REJECT_STREAK:
                sample = scaled
                state["last_good"] = sample
                state["rejects"] = 0
            else:
                sample = state["last_good"]
        else:
            sample = scaled
            state["last_good"] = sample
            state["rejects"] = 0
        sample = ctx.set_local("sample", sample)
        state["h2"] = state["h1"]
        state["h1"] = state["h0"]
        state["h0"] = sample
        ordered = sorted((state["h0"], state["h1"], state["h2"]))
        return {"level_f": ordered[1] & ~(C.LEVEL_QUANTUM - 1)}


class FlowS(Module):
    """Inflow sensing: wrap-delta pulse accumulation over a window."""

    INPUTS = ("FLOW_CNT",)
    OUTPUTS = ("inflow_rate",)
    STATE = (
        CellSpec("last_cnt", **_U8),
        *[CellSpec(f"w{j}", **_U8) for j in range(C.FLOW_WINDOW)],
        CellSpec("pos", **_U8),
    )
    LOCALS = (
        CellSpec("delta", **_U8),
        CellSpec("rate", **_U16),
    )

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        state = self.state
        cnt = ctx.arg("FLOW_CNT")
        delta = ctx.set_local("delta", cnt - state["last_cnt"])
        state["last_cnt"] = cnt
        pos = state["pos"] % C.FLOW_WINDOW
        state[f"w{pos}"] = delta
        state["pos"] = (pos + 1) % C.FLOW_WINDOW
        # pulses per window, scaled: the controller's feed-forward unit
        rate = ctx.set_local(
            "rate",
            sum(state[f"w{j}"] for j in range(C.FLOW_WINDOW)) << 7,
        )
        return {"inflow_rate": rate}


class Ctrl(Module):
    """Level regulator: PI on the setpoint error plus inflow
    feed-forward, slew-limited by elapsed ``ticks`` time."""

    INPUTS = ("level_f", "inflow_rate", "ticks")
    OUTPUTS = ("valve_cmd",)
    #: valve_cmd slew per tick of elapsed time
    RATE_PER_TICK = 400
    STATE = (
        CellSpec("integ", **_I32),
        CellSpec("cmd_prev", **_U16),
        CellSpec("last_ticks", **_U16),
        CellSpec("started", **_BOOL),
    )
    LOCALS = (
        CellSpec("err", **_I32),
        CellSpec("pterm", **_I32),
        CellSpec("ff", **_I32),
        CellSpec("target", **_I32),
        CellSpec("dt", **_U16),
    )

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        state = self.state
        err = ctx.set_local(
            "err", ctx.arg("level_f") - C.LEVEL_SETPOINT_COUNTS
        )
        integ = state["integ"] + err
        integ = max(
            -C.CTRL_INTEG_CLAMP * 16, min(C.CTRL_INTEG_CLAMP * 16, integ)
        )
        state["integ"] = integ
        pterm = ctx.set_local("pterm", (C.CTRL_KP_NUM * err) >> 8)
        ff = ctx.set_local(
            "ff", (C.CTRL_FF_NUM * ctx.arg("inflow_rate")) >> 8
        )
        target = ctx.set_local(
            "target",
            pterm + ((C.CTRL_KI_NUM * integ) >> 8) + ff,
        )
        target = max(0, min(C.VALUE_FULL_SCALE, target))

        ticks = ctx.arg("ticks")
        if state["started"]:
            dt = (ticks - state["last_ticks"]) & 0xFFFF
        else:
            dt = 0
            state["started"] = 1
        state["last_ticks"] = ticks
        dt = ctx.set_local("dt", min(dt, 50))
        step = self.RATE_PER_TICK * dt
        prev = state["cmd_prev"]
        if target > prev:
            cmd = min(prev + step, target)
        else:
            cmd = max(prev - step, target)
        state["cmd_prev"] = cmd
        return {"valve_cmd": cmd}


class Alarm(Module):
    """High-level alarm: hysteresis latch on the filtered level."""

    INPUTS = ("level_f",)
    OUTPUTS = ("ALARM_OUT",)
    STATE = (CellSpec("latched", **_BOOL),)
    LOCALS = (CellSpec("level_copy", **_U16),)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        level = ctx.set_local("level_copy", ctx.arg("level_f"))
        if self.state["latched"]:
            if level < C.ALARM_OFF_COUNTS:
                self.state["latched"] = 0
        else:
            if level > C.ALARM_ON_COUNTS:
                self.state["latched"] = 1
        return {"ALARM_OUT": self.state["latched"]}


class ValveA(Module):
    """Valve actuation: 16-bit command onto the 12-bit position register."""

    INPUTS = ("valve_cmd",)
    OUTPUTS = ("VALVE_POS",)
    STATE = ()
    LOCALS = (CellSpec("pos", **_U16),)

    def invoke(self, ctx: ExecutionContext) -> Dict[str, Number]:
        pos = ctx.set_local("pos", ctx.arg("valve_cmd") >> 4)
        return {"VALVE_POS": pos}
