"""Struct-of-arrays batch kernel for the water-tank target.

Advances a whole batch of injected missions through each tick at once:
every scalar quantity of :class:`~repro.watertank.simulation.WaterTankSimulator`
— plant state, module state cells, sensor registers, the signal store —
becomes an int64/float64 array with one row per run, and each module
body is transcribed onto those arrays in the exact operation order of
the scalar code (same quantization points, same branch structure
encoded as masks).  Outcomes are bit-identical to the scalar path by
construction; see :mod:`repro.fi.vector` for the contract.

Dispatch is per row: like the scalar mission loop, each row runs the
modules of its own ``tick_nbr`` slot, so rows whose flips corrupt the
dispatch chain (TIMER successor cells, the ``tick_nbr`` signal) follow
their corrupted schedule inside the batch via masked invocations.
Only permeability rows — whose recorded invocation streams assume the
golden schedule — retire to the scalar path on dispatch divergence.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.fi.vector import (
    BankArrays,
    GroupJob,
    GroupResult,
    MemoryFlipPlan,
    RecoveringBankArrays,
    RowInjection,
    q_bool,
    q_int,
    q_uint,
    vector_stats,
)
from repro.model.signal import SignalType
from repro.watertank import constants as C

__all__ = ["WatertankVectorKernel"]

_U8 = 0xFF
_U16 = 0xFFFF


def _rows(template_of, rows, pick, dtype=np.int64):
    """One array column per row, gathered from the rows' templates."""
    return np.array(
        [pick(template_of(row.case_id)) for row in rows], dtype=dtype
    )


class WatertankVectorKernel:
    """Vectorized mission executor for batches of water-tank runs."""

    target_name = "watertank"

    @staticmethod
    def supports(probe) -> bool:
        return type(probe).__name__ == "WaterTankSimulator"

    def __init__(self, probe):
        self.mission_ticks = int(probe.mission_ticks)
        self.n_slots = C.N_SLOTS
        self.slot_modules: Dict[int, List[str]] = {}
        for module, slot in C.MODULE_SLOTS.items():
            self.slot_modules.setdefault(slot, []).append(module)
        system = probe.system
        #: module -> (in ports, out ports, in signals, out signals)
        self.ports = {}
        for module in system.modules():
            name = module.name
            ins = list(module.inputs)
            outs = list(module.outputs)
            self.ports[name] = (
                ins,
                outs,
                [system.signal_of_input(name, p) for p in ins],
                [system.signal_of_output(name, p) for p in outs],
            )
        #: signal -> (SignalType, width), for store-write quantization
        self.quant = {
            name: (system.signal(name).sig_type, system.signal(name).width)
            for name in system.signal_names()
        }
        #: (module, cell) -> (cell_type, width), for memory-row flips
        self.state_spec = {}
        self.local_spec = {}
        for module in system.modules():
            for spec in module.state.specs():
                self.state_spec[(module.name, spec.name)] = (
                    spec.cell_type, spec.width
                )
            for spec in module.local_specs:
                self.local_spec[(module.name, spec.name)] = (
                    spec.cell_type, spec.width
                )
        #: state cells feeding the gathered dispatch schedule
        self.succ_cells = frozenset(
            ("TIMER", f"succ{j}") for j in range(self.n_slots)
        )
        self._mem: MemoryFlipPlan | None = None

    def module_ports(self, module: str):
        ins, outs, _, _ = self.ports[module]
        return ins, outs

    def supports_injection(self, inj: RowInjection) -> bool:
        """Whether a row's injection can strike inside a batch
        (memory rows: int-backed cells the kernel hooks only)."""
        kind = inj.memory_kind
        if kind is None:
            return True
        if kind == "state":
            spec = self.state_spec.get((inj.module, inj.cell))
        elif kind == "signal":
            spec = self.quant.get(inj.cell)
        elif kind == "arg":
            ports = self.ports.get(inj.module)
            if ports is None or inj.cell not in ports[0]:
                return False
            spec = self.quant.get(ports[2][ports[0].index(inj.cell)])
        elif kind == "local":
            spec = self.local_spec.get((inj.module, inj.cell))
        else:
            return False
        return spec is not None and spec[0] is not SignalType.FLOAT

    def _mem_local(self, module: str, name: str, values):
        """Hook point of one scalar ``set_local``: armed memory rows
        strike the freshly quantized local value here."""
        if self._mem is None:
            return values
        return self._mem.local(module, name, values)

    # ------------------------------------------------------------------
    def _q_store(self, signal: str, values):
        """Store-write quantization of *values* for *signal* (always a
        fresh array, so store cells never alias register arrays)."""
        sig_type, width = self.quant[signal]
        if sig_type is SignalType.BOOL:
            return q_bool(values)
        if sig_type is SignalType.INT:
            return q_int(values, width)
        if sig_type is SignalType.FLOAT:
            return np.array(values, dtype=np.int64, copy=True)
        return q_uint(np.asarray(values, dtype=np.int64), width)

    # ------------------------------------------------------------------
    def run_group(self, job: GroupJob) -> GroupResult:
        rows = job.rows
        n = len(rows)
        mission = self.mission_ticks
        template_of = job.templates.__getitem__
        case_of = job.cases.__getitem__

        # ---- per-row signal store (int64, one row per run)
        signal_names = list(template_of(rows[0].case_id).signals)
        S = {
            name: _rows(template_of, rows, lambda t, n=name: t.signals[n])
            for name in signal_names
        }

        # ---- per-row module state cells
        M: Dict[str, Dict[str, np.ndarray]] = {}
        for module in self.ports:
            cells = template_of(rows[0].case_id).modules[module]
            M[module] = {
                cell: _rows(
                    template_of, rows,
                    lambda t, m=module, c=cell: t.modules[m][c],
                )
                for cell in cells
            }

        # ---- per-row plant, sensors, inflow profile
        plant_keys = ("time_s", "level_m", "valve_pos", "total_inflow_m3")
        P = {
            key: _rows(
                template_of, rows, lambda t, k=key: t.plant[k], np.float64
            )
            for key in plant_keys
        }
        regs = {
            "LVL_ADC": _rows(
                template_of, rows, lambda t: t.sensors["lvl_adc"]
            ),
            "FLOW_CNT": _rows(
                template_of, rows, lambda t: t.sensors["flow_cnt"]
            ),
        }
        mirror = _rows(
            template_of, rows, lambda t: t.sensors["_pulse_mirror"]
        )
        base = np.array(
            [case_of(r.case_id).base_inflow_m3s for r in rows], np.float64
        )
        step_amp = np.array(
            [case_of(r.case_id).step_m3s for r in rows], np.float64
        )

        # ---- injection plan
        inj = [row.injection for row in rows]
        bitmask = np.array([1 << i.bit for i in inj], dtype=np.int64)
        first_inj = np.full(n, -1, dtype=np.int64)
        mem = None
        inj_tick = inj_sig = None
        port_idx = from_tick = pending = None
        if job.kind == "permeability":
            in_ports = self.ports[job.module][0]
            port_idx = np.array(
                [in_ports.index(i.port) for i in inj], dtype=np.int64
            )
            from_tick = np.array([i.tick for i in inj], dtype=np.int64)
            pending = np.ones(n, dtype=bool)
        elif job.kind in ("memory", "recovery"):
            mem = MemoryFlipPlan(self, rows, first_inj)
        else:
            inj_tick = np.array([i.tick for i in inj], dtype=np.int64)
            inj_sig = {
                signal: np.array(
                    [i.signal == signal for i in inj], dtype=bool
                )
                for signal in regs
            }

        # ---- recording buffers for the compared module (permeability)
        rec_ins = rec_outs = None
        rec_k = 0
        if job.kind == "permeability":
            target = job.module
            ins, outs, _, _ = self.ports[target]
            if target == "TIMER":
                cap = mission
            else:
                slot = next(
                    s for s, mods in self.slot_modules.items()
                    if target in mods
                )
                first = (slot - 1) % self.n_slots
                cap = max(0, (mission - first + self.n_slots - 1)
                          // self.n_slots)
            rec_ins = np.zeros((n, cap, len(ins)), dtype=np.int64)
            rec_outs = np.zeros((n, cap, len(outs)), dtype=np.int64)
        else:
            target = None

        bank = None
        if job.specs:
            if job.recover:
                bank = RecoveringBankArrays(
                    job.specs, n,
                    policies=job.policies, q_store=self._q_store,
                )
            else:
                bank = BankArrays(job.specs, n)

        # ---- mission verdict accumulators (memory/recovery rows)
        if mem is not None:
            missed = np.zeros(n, dtype=np.int64)
            failed = np.zeros(n, dtype=bool)
        else:
            missed = failed = None
        self._mem = mem

        # ---- the mission loop
        succ = np.stack(
            [M["TIMER"][f"succ{j}"] for j in range(self.n_slots)], axis=1
        )
        retired = np.zeros(n, dtype=bool)
        row_ix = np.arange(n)
        dt = C.TICK_S
        adc_full = float((1 << C.LVL_ADC_BITS) - 1)
        valve_full = (1 << C.VALVE_POS_BITS) - 1

        for t in range(mission):
            # --- TankSensorSuite.advance
            ratio = np.maximum(
                0.0, np.minimum(1.0, P["level_m"] / C.TANK_HEIGHT_M)
            )
            # round() is banker's rounding; np.rint matches it exactly
            regs["LVL_ADC"] = np.rint(ratio * adc_full).astype(np.int64)
            pulses = np.floor(
                P["total_inflow_m3"] * C.PULSES_PER_M3
            ).astype(np.int64)
            upd = pulses > mirror
            regs["FLOW_CNT"] = np.where(
                upd, (regs["FLOW_CNT"] + (pulses - mirror)) & _U8,
                regs["FLOW_CNT"],
            )
            mirror = np.where(upd, pulses, mirror)

            # --- _write_sensor_inputs
            S["LVL_ADC"] = self._q_store("LVL_ADC", regs["LVL_ADC"])
            S["FLOW_CNT"] = self._q_store("FLOW_CNT", regs["FLOW_CNT"])

            # --- pre-tick system-input flips (detection rows)
            if inj_tick is not None:
                fire = inj_tick == t
                if fire.any():
                    for signal, is_sig in inj_sig.items():
                        m = fire & is_sig
                        if m.any():
                            regs[signal][m] ^= bitmask[m]
                            S[signal][m] ^= bitmask[m]
                    first_inj = np.where(fire, t, first_inj)

            # --- pre-tick periodic memory flips (memory/recovery rows)
            if mem is not None and mem.pre_tick(t, S, M):
                succ = np.stack(
                    [M["TIMER"][f"succ{j}"] for j in range(self.n_slots)],
                    axis=1,
                )

            # --- TIMER (every tick)
            arg = S["tick_nbr"].copy()
            if target == "TIMER":
                sel = pending & (t >= from_tick)
                if sel.any():
                    arg[sel] ^= bitmask[sel]
                    pending &= ~sel
                    first_inj = np.where(sel, t, first_inj)
            if mem is not None:
                mem.marshal("TIMER", [arg])
            in_range = arg < self.n_slots
            gathered = succ[row_ix, arg % self.n_slots]
            nxt = self._mem_local(
                "TIMER", "next_slot", np.where(in_range, gathered, 0)
            )
            timer = M["TIMER"]
            timer["ticks"] = (timer["ticks"] + 1) & _U16
            S["tick_nbr"] = self._q_store("tick_nbr", nxt)
            S["ticks"] = self._q_store("ticks", timer["ticks"])
            if target == "TIMER":
                rec_ins[:, rec_k, 0] = arg
                rec_outs[:, rec_k, 0] = S["tick_nbr"]
                rec_outs[:, rec_k, 1] = S["ticks"]
                rec_k += 1

            # --- the slot's module(s)
            slot = (t + 1) % self.n_slots
            cur = S["tick_nbr"]
            if target is None:
                # per-row dispatch (memory/recovery/detection rows):
                # exactly like the scalar mission loop, each row runs
                # the modules of its own — possibly corrupted —
                # tick_nbr slot, so dispatch-divergent rows stay in
                # the batch instead of retiring to the scalar path
                if (cur == slot).all():
                    for module in self.slot_modules.get(slot, ()):
                        self._invoke(module, S, M, None)
                else:
                    for value in np.unique(cur):
                        modules = self.slot_modules.get(int(value), ())
                        if not modules:
                            continue
                        row_mask = cur == value
                        for module in modules:
                            self._invoke(module, S, M, None, mask=row_mask)
            else:
                # permeability rows: the recorded invocation stream
                # assumes the golden schedule — retire rows whose
                # dispatch diverged from it
                diverged = (~retired) & (cur != slot)
                if diverged.any():
                    retired |= diverged
                for module in self.slot_modules.get(slot, ()):
                    flip = None
                    if module == target:
                        sel = pending & (t >= from_tick)
                        flip = (sel, port_idx, bitmask)
                    args, outs_arrays = self._invoke(module, S, M, flip)
                    if flip is not None and flip[0].any():
                        sel = flip[0]
                        pending &= ~sel
                        first_inj = np.where(sel, t, first_inj)
                    if module == target:
                        for j, a in enumerate(args):
                            rec_ins[:, rec_k, j] = a
                        for k, o in enumerate(outs_arrays):
                            rec_outs[:, rec_k, k] = o
                        rec_k += 1

            # --- monitor bank (end of each dispatch cycle)
            if bank is not None and t % self.n_slots == self.n_slots - 1:
                bank.evaluate(S, t)

            # --- TankPlant.step
            commanded = np.maximum(
                0.0, np.minimum(1.0, S["VALVE_POS"] / valve_full)
            )
            P["valve_pos"] += (commanded - P["valve_pos"]) * (
                dt / C.VALVE_TAU_S
            )
            phase = (P["time_s"] % C.DISTURBANCE_PERIOD_S) \
                / C.DISTURBANCE_PERIOD_S
            inflow = base + np.where(phase >= 0.5, step_amp, 0.0)
            outflow = C.OUTFLOW_CV * P["valve_pos"] * np.sqrt(
                np.maximum(0.0, P["level_m"])
            )
            level = P["level_m"] + (inflow - outflow) * dt / C.TANK_AREA_M2
            P["level_m"] = np.maximum(
                0.0, np.minimum(C.TANK_HEIGHT_M, level)
            )
            P["total_inflow_m3"] += inflow * dt
            P["time_s"] += dt

            # --- _observe_safety (memory/recovery rows)
            if mem is not None:
                level = P["level_m"]
                bad = (level > C.ALARM_LEVEL_M) & (S["ALARM_OUT"] == 0)
                missed = np.where(bad, missed + 1, 0)
                failed |= (
                    (level >= C.MAX_LEVEL_M)
                    | (level <= C.MIN_LEVEL_M)
                    | (missed > C.ALARM_GRACE_TICKS)
                )

        self._mem = None
        vector_stats.batched_ticks += n * mission

        injected = first_inj >= 0
        return GroupResult(
            retired=retired.tolist(),
            injected=injected.tolist(),
            first_injection_tick=[
                int(v) if v >= 0 else None for v in first_inj
            ],
            completion_tick=[mission - 1] * n,
            rec_len=[rec_k] * n if rec_ins is not None else None,
            rec_ins=rec_ins,
            rec_outs=rec_outs,
            bank=[bank.row_records(r) for r in range(n)] if bank else None,
            failed=failed.tolist() if failed is not None else None,
            actions=(
                bank.actions.tolist()
                if bank is not None and hasattr(bank, "actions")
                else None
            ),
        )

    # ------------------------------------------------------------------
    # One module invocation on the whole batch.
    # ------------------------------------------------------------------
    def _invoke(self, module, S, M, flip, mask=None):
        """Gather args from the store, apply marshal flips, run the
        module body, write outputs back through store quantization.
        Returns (post-marshal args, store read-back outputs) — the two
        tuples an :class:`InvocationRecord` captures.

        With *mask*, only the masked rows take the invocation: the
        body runs at full width, but outputs and state cells of rows
        outside the mask are merged back unchanged — those rows'
        (possibly corrupted) schedules did not dispatch *module* this
        tick — and armed memory strikes are confined to the mask."""
        ins, outs, in_sigs, out_sigs = self.ports[module]
        args = [S[sig].copy() for sig in in_sigs]
        if flip is not None:
            sel, port_idx, bitmask = flip
            if sel.any():
                for j in range(len(args)):
                    m = sel & (port_idx == j)
                    if m.any():
                        # xor of a bit < width on an in-range quantized
                        # value stays in range for every signal type
                        args[j][m] ^= bitmask[m]
        prev_live = None
        if self._mem is not None:
            if mask is not None:
                prev_live = self._mem.scoped_live(mask)
            self._mem.marshal(module, args)
        body = self._BODIES[module]
        st = M[module]
        out_arrays = []
        if mask is None:
            results = body(self, args, st)
            for sig, values in zip(out_sigs, results):
                S[sig] = self._q_store(sig, values)
                out_arrays.append(S[sig])
        else:
            saved_state = dict(st)
            saved_out = {sig: S[sig] for sig in out_sigs}
            results = body(self, args, st)
            for sig, values in zip(out_sigs, results):
                merged = np.where(
                    mask, self._q_store(sig, values), saved_out[sig]
                )
                S[sig] = merged
                out_arrays.append(merged)
            # module bodies reassign state cells (never mutate them in
            # place), so the pre-invoke references still hold the
            # unmasked rows' values
            for cell, old in saved_state.items():
                new = st[cell]
                if new is not old:
                    st[cell] = np.where(mask, new, old)
            if self._mem is not None:
                self._mem.restore_live(prev_live)
        return args, out_arrays

    # ------------------------------------------------------------------
    # Module bodies (exact transcriptions of repro.watertank.modules).
    # ------------------------------------------------------------------
    def _body_level_s(self, args, st):
        (adc,) = args
        scaled = self._mem_local(  # local u16
            "LEVEL_S", "scaled", (adc << (16 - C.LVL_ADC_BITS)) & _U16
        )
        jump = np.abs(scaled - st["last_good"]) > C.LEVEL_MAX_JUMP
        rejects_b = (st["rejects"] + 1) & _U8
        resync = jump & (rejects_b > 5)
        hold = jump & ~resync
        sample = np.where(hold, st["last_good"], scaled)
        st["last_good"] = np.where(hold, st["last_good"], sample)
        st["rejects"] = np.where(hold, rejects_b, 0)
        sample = self._mem_local(  # local u16
            "LEVEL_S", "sample", sample & _U16
        )
        st["h2"] = st["h1"]
        st["h1"] = st["h0"]
        st["h0"] = sample
        low = np.minimum(st["h0"], st["h1"])
        high = np.maximum(st["h0"], st["h1"])
        median = np.maximum(low, np.minimum(high, st["h2"]))
        return [median & ~(C.LEVEL_QUANTUM - 1)]

    def _body_flow_s(self, args, st):
        (cnt,) = args
        delta = self._mem_local(  # local u8
            "FLOW_S", "delta", (cnt - st["last_cnt"]) & _U8
        )
        st["last_cnt"] = cnt & _U8
        pos = st["pos"] % C.FLOW_WINDOW
        w = np.stack(
            [st[f"w{j}"] for j in range(C.FLOW_WINDOW)], axis=1
        )
        w[np.arange(len(cnt)), pos] = delta
        for j in range(C.FLOW_WINDOW):
            st[f"w{j}"] = w[:, j].copy()
        st["pos"] = (pos + 1) % C.FLOW_WINDOW
        rate = self._mem_local(  # local u16 wraps
            "FLOW_S", "rate", (w.sum(axis=1) << 7) & _U16
        )
        return [rate]

    def _body_ctrl(self, args, st):
        level_f, inflow_rate, ticks = args
        err = self._mem_local(  # local i32
            "CTRL", "err", q_int(level_f - C.LEVEL_SETPOINT_COUNTS, 32)
        )
        clamp = C.CTRL_INTEG_CLAMP * 16
        integ = np.maximum(
            -clamp, np.minimum(clamp, st["integ"] + err)
        )
        st["integ"] = q_int(integ, 32)
        pterm = self._mem_local(
            "CTRL", "pterm", q_int((C.CTRL_KP_NUM * err) >> 8, 32)
        )
        ff = self._mem_local(
            "CTRL", "ff", q_int((C.CTRL_FF_NUM * inflow_rate) >> 8, 32)
        )
        target = self._mem_local(
            "CTRL", "target",
            q_int(pterm + ((C.CTRL_KI_NUM * integ) >> 8) + ff, 32),
        )
        target = np.maximum(0, np.minimum(C.VALUE_FULL_SCALE, target))
        started = st["started"] != 0
        dt = np.where(started, (ticks - st["last_ticks"]) & _U16, 0)
        st["started"] = np.ones(len(ticks), dtype=np.int64)
        st["last_ticks"] = ticks & _U16
        dt = self._mem_local(  # local u16
            "CTRL", "dt", np.minimum(dt, 50) & _U16
        )
        step = 400 * dt  # Ctrl.RATE_PER_TICK
        prev = st["cmd_prev"]
        cmd = np.where(
            target > prev,
            np.minimum(prev + step, target),
            np.maximum(prev - step, target),
        )
        st["cmd_prev"] = cmd & _U16
        return [cmd]

    def _body_alarm(self, args, st):
        (level_f,) = args
        level = self._mem_local(  # local u16
            "ALARM", "level_copy", level_f & _U16
        )
        latched = st["latched"] != 0
        unlatch = latched & (level < C.ALARM_OFF_COUNTS)
        latch = (~latched) & (level > C.ALARM_ON_COUNTS)
        new = np.where(unlatch, 0, np.where(latch, 1, st["latched"]))
        st["latched"] = q_bool(new)
        return [st["latched"]]

    def _body_valve_a(self, args, st):
        (valve_cmd,) = args
        return [self._mem_local("VALVE_A", "pos", (valve_cmd >> 4) & _U16)]

    _BODIES = {
        "LEVEL_S": _body_level_s,
        "FLOW_S": _body_flow_s,
        "CTRL": _body_ctrl,
        "ALARM": _body_alarm,
        "VALVE_A": _body_valve_a,
    }
