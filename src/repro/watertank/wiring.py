"""Wiring of the water-tank system model."""

from __future__ import annotations

from typing import Dict

from repro.model.signal import SignalRole, SignalSpec, SignalType
from repro.model.system import SystemModel
from repro.watertank import constants as C
from repro.watertank.modules import Alarm, Ctrl, FlowS, LevelS, Timer, ValveA

__all__ = ["build_watertank_system", "TANK_SIGNAL_SPECS"]

TANK_SIGNAL_SPECS: Dict[str, SignalSpec] = {
    spec.name: spec
    for spec in (
        SignalSpec(
            "LVL_ADC", SignalType.UINT, width=C.LVL_ADC_BITS,
            role=SignalRole.SYSTEM_INPUT,
            description="level sensor ADC counts",
        ),
        SignalSpec(
            "FLOW_CNT", SignalType.UINT, width=C.FLOW_CNT_BITS,
            role=SignalRole.SYSTEM_INPUT,
            description="inflow flow-meter pulse counter",
        ),
        SignalSpec(
            "tick_nbr", SignalType.UINT, width=16,
            minimum=0, maximum=C.N_SLOTS - 1,
            description="current scheduler slot",
        ),
        SignalSpec(
            "ticks", SignalType.UINT, width=16,
            description="10 ms tick counter",
        ),
        SignalSpec(
            "level_f", SignalType.UINT, width=16,
            initial=C.LEVEL_SETPOINT_COUNTS,
            minimum=0, maximum=C.VALUE_FULL_SCALE,
            description="filtered level measurement",
        ),
        SignalSpec(
            "inflow_rate", SignalType.UINT, width=16,
            minimum=0, maximum=64 << 7,
            description="windowed inflow rate",
        ),
        SignalSpec(
            "valve_cmd", SignalType.UINT, width=16,
            minimum=0, maximum=C.VALUE_FULL_SCALE,
            description="regulator valve command",
        ),
        SignalSpec(
            "VALVE_POS", SignalType.UINT, width=16,
            minimum=0, maximum=(1 << C.VALVE_POS_BITS) - 1,
            role=SignalRole.SYSTEM_OUTPUT,
            description="valve position register",
        ),
        SignalSpec(
            "ALARM_OUT", SignalType.BOOL, width=8,
            role=SignalRole.SYSTEM_OUTPUT,
            description="high-level alarm line",
        ),
    )
}


def build_watertank_system() -> SystemModel:
    """Construct and validate the six-module water-tank controller."""
    system = SystemModel("water-tank")
    for spec in TANK_SIGNAL_SPECS.values():
        system.add_signal(spec)

    system.add_module(Timer("TIMER"))
    system.add_module(LevelS("LEVEL_S"))
    system.add_module(FlowS("FLOW_S"))
    system.add_module(Ctrl("CTRL"))
    system.add_module(Alarm("ALARM"))
    system.add_module(ValveA("VALVE_A"))

    system.bind_output("tick_nbr", "TIMER", "tick_nbr")
    system.bind_output("ticks", "TIMER", "ticks")
    system.connect_input("tick_nbr", "TIMER", "tick_nbr")

    system.connect_input("LVL_ADC", "LEVEL_S", "LVL_ADC")
    system.bind_output("level_f", "LEVEL_S", "level_f")

    system.connect_input("FLOW_CNT", "FLOW_S", "FLOW_CNT")
    system.bind_output("inflow_rate", "FLOW_S", "inflow_rate")

    system.connect_input("level_f", "CTRL", "level_f")
    system.connect_input("inflow_rate", "CTRL", "inflow_rate")
    system.connect_input("ticks", "CTRL", "ticks")
    system.bind_output("valve_cmd", "CTRL", "valve_cmd")

    system.connect_input("level_f", "ALARM", "level_f")
    system.bind_output("ALARM_OUT", "ALARM", "ALARM_OUT")

    system.connect_input("valve_cmd", "VALVE_A", "valve_cmd")
    system.bind_output("VALVE_POS", "VALVE_A", "VALVE_POS")

    system.validate()
    return system
