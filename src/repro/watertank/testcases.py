"""Test cases of the water-tank target: deterministic inflow profiles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ModelError
from repro.watertank import constants as C

__all__ = ["TankTestCase", "standard_tank_cases"]


@dataclass(frozen=True)
class TankTestCase:
    """One deterministic regulation mission."""

    __test__ = False  # not a pytest class, despite the domain name

    case_id: int
    base_inflow_m3s: float
    step_m3s: float

    def __post_init__(self) -> None:
        if self.base_inflow_m3s < 0 or self.step_m3s < 0:
            raise ModelError(
                f"tank case {self.case_id}: inflows must be non-negative"
            )

    @property
    def label(self) -> str:
        return (
            f"wt{self.case_id:02d}"
            f"[q={self.base_inflow_m3s * 1000:.0f}l/s,"
            f"step={self.step_m3s * 1000:.0f}l/s]"
        )


def standard_tank_cases() -> List[TankTestCase]:
    """The 3x3 = 9 standard regulation missions."""
    cases: List[TankTestCase] = []
    case_id = 0
    for base in C.TEST_BASE_INFLOWS:
        for step in C.TEST_STEP_AMPLITUDES:
            cases.append(TankTestCase(case_id, base, step))
            case_id += 1
    return cases
