"""Executable-assertion catalogue for the water-tank target.

One EA per guardable signal, with ROM/RAM costs in the same accounting
the paper's Table 3 uses for the arrestment target (range/rate EAs:
50/14 bytes; monotonic/sequence: 25-37/13 bytes).  ``ALARM_OUT`` is a
boolean and therefore unguardable by this EA class — the same blind
spot the paper documents for ``slow_speed``/``stopped``, here sitting
directly on a system output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.edm.assertions import AssertionSpec, EAKind
from repro.errors import AssertionSpecError
from repro.watertank import constants as C

__all__ = ["TANK_EA_BY_NAME", "TANK_EA_BY_SIGNAL", "tank_assertions"]


def _build() -> Dict[str, AssertionSpec]:
    specs = [
        AssertionSpec(
            name="TEA1", signal="level_f", kind=EAKind.RANGE_RATE,
            minimum=0, maximum=C.VALUE_FULL_SCALE,
            # gate bound + quantization slack, per LEVEL_S invocation
            max_delta=C.LEVEL_MAX_JUMP + 2 * C.LEVEL_QUANTUM,
            rom_bytes=50, ram_bytes=14,
        ),
        AssertionSpec(
            name="TEA2", signal="inflow_rate", kind=EAKind.RANGE_RATE,
            minimum=0, maximum=64 << 7,
            max_delta=24 << 7,
            rom_bytes=50, ram_bytes=14,
        ),
        AssertionSpec(
            name="TEA3", signal="valve_cmd", kind=EAKind.RANGE_RATE,
            minimum=0, maximum=C.VALUE_FULL_SCALE,
            # slew limiter bound: RATE_PER_TICK * clamped dt, + margin
            max_delta=400 * 50 + 1000,
            rom_bytes=50, ram_bytes=14,
        ),
        AssertionSpec(
            name="TEA4", signal="ticks", kind=EAKind.SEQUENCE,
            exact_delta=C.N_SLOTS, modulus=1 << 16,
            rom_bytes=25, ram_bytes=13,
        ),
        AssertionSpec(
            name="TEA5", signal="tick_nbr", kind=EAKind.SEQUENCE,
            minimum=0, maximum=C.N_SLOTS - 1,
            exact_delta=0, modulus=1 << 16,
            rom_bytes=37, ram_bytes=13,
        ),
        AssertionSpec(
            name="TEA6", signal="VALVE_POS", kind=EAKind.RANGE_RATE,
            minimum=0, maximum=(1 << C.VALVE_POS_BITS) - 1,
            max_delta=(400 * 50 + 1000) >> 4,
            rom_bytes=50, ram_bytes=14,
        ),
    ]
    return {spec.name: spec for spec in specs}


#: EA name -> specification.
TANK_EA_BY_NAME: Dict[str, AssertionSpec] = _build()

#: guarded signal -> specification.
TANK_EA_BY_SIGNAL: Dict[str, AssertionSpec] = {
    spec.signal: spec for spec in TANK_EA_BY_NAME.values()
}


def tank_assertions(signals: Sequence[str] = None) -> List[AssertionSpec]:
    """The EA instances guarding *signals* (default: all guardable)."""
    if signals is None:
        return list(TANK_EA_BY_NAME.values())
    unknown = [s for s in signals if s not in TANK_EA_BY_SIGNAL]
    if unknown:
        raise AssertionSpecError(
            f"no tank assertion for signals {unknown}; guardable: "
            f"{sorted(TANK_EA_BY_SIGNAL)}"
        )
    wanted = set(signals)
    return [
        spec for spec in TANK_EA_BY_NAME.values() if spec.signal in wanted
    ]
