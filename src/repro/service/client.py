"""Client side of the campaign-service socket protocol.

:class:`ServiceClient` is what ``repro submit | status | cancel |
drain`` use.  Each request opens one short-lived connection to the
daemon's socket (found via ``<spool>/socket.path``), sends one JSON
line and reads the reply line(s).

Two operations degrade gracefully when no daemon is serving:

* :meth:`ServiceClient.submit` falls back to enqueueing directly into
  the spool's ``queue.db`` — the job is durable immediately and the
  next ``repro serve`` picks it up;
* :meth:`ServiceClient.status` falls back to reading the queue
  directly (without live per-campaign progress from the scheduler's
  view, but with the same job rows and counters).

Everything else (``cancel`` of a *running* job, ``drain``) needs a
live daemon and raises :class:`ServiceError` otherwise.
"""

from __future__ import annotations

import json
import os
import socket
from typing import Any, Dict, Iterator, Optional

from repro.errors import ServiceError
from repro.service.daemon import socket_path_for
from repro.service.jobs import JobQueue
from repro.service.scheduler import job_progress, validate_spec

__all__ = ["ServiceClient", "default_spool"]


def default_spool() -> str:
    """The default spool directory (override with ``--spool``)."""
    return os.environ.get("REPRO_SPOOL", ".repro-service")


class ServiceClient:
    """Talks to one spool's daemon; offline-capable where possible."""

    def __init__(self, spool: str, connect_timeout_s: float = 5.0) -> None:
        self.spool = os.path.abspath(spool)
        self.connect_timeout_s = connect_timeout_s

    # -- plumbing -------------------------------------------------------
    def _socket_path(self) -> str:
        recorded = os.path.join(self.spool, "socket.path")
        if os.path.exists(recorded):
            with open(recorded, "r", encoding="utf-8") as handle:
                path = handle.read().strip()
            if path:
                return path
        return socket_path_for(self.spool)

    def _connect(self) -> socket.socket:
        path = self._socket_path()
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(self.connect_timeout_s)
        try:
            conn.connect(path)
        except OSError as exc:
            conn.close()
            raise ServiceError(
                f"no daemon serving {self.spool} ({exc}); "
                f"start one with 'repro serve --spool {self.spool}'"
            ) from exc
        return conn

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one reply line.

        The connect timeout also bounds the reply read: connecting to
        a dead daemon's listen backlog succeeds, so an unbounded read
        here could hang forever on a socket nobody will ever answer.
        """
        with self._connect() as conn:
            writer = conn.makefile("w", encoding="utf-8")
            reader = conn.makefile("r", encoding="utf-8")
            writer.write(
                json.dumps(payload, separators=(",", ":")) + "\n"
            )
            writer.flush()
            try:
                line = reader.readline()
            except OSError as exc:
                raise ServiceError(
                    f"daemon did not answer within "
                    f"{self.connect_timeout_s:g}s ({exc})"
                ) from exc
        if not line.strip():
            raise ServiceError("daemon closed the connection mid-reply")
        return json.loads(line)

    def request_stream(
        self, payload: Dict[str, Any]
    ) -> Iterator[Dict[str, Any]]:
        """One request, a stream of reply lines until EOF."""
        with self._connect() as conn:
            conn.settimeout(None)  # streams idle between status polls
            writer = conn.makefile("w", encoding="utf-8")
            reader = conn.makefile("r", encoding="utf-8")
            writer.write(
                json.dumps(payload, separators=(",", ":")) + "\n"
            )
            writer.flush()
            for line in reader:
                if line.strip():
                    yield json.loads(line)

    def alive(self) -> bool:
        """Whether a daemon currently answers on this spool."""
        try:
            return bool(self.request({"op": "ping"}).get("ok"))
        except (ServiceError, ValueError):
            return False

    # -- operations -----------------------------------------------------
    def submit(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one campaign job; offline submissions enqueue
        directly into the durable queue for the next daemon."""
        spec = validate_spec(spec)
        try:
            reply = self.request({"op": "submit", "spec": spec})
        except ServiceError:
            with JobQueue(os.path.join(self.spool, "queue.db")) as queue:
                job_id = queue.submit(spec)
            return {"ok": True, "job": job_id, "offline": True}
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "submission refused"))
        return reply

    def status(
        self, job_id: Optional[int] = None
    ) -> Dict[str, Any]:
        """One status snapshot; reads the queue directly offline."""
        payload: Dict[str, Any] = {"op": "status"}
        if job_id is not None:
            payload["job"] = job_id
        try:
            return self.request(payload)
        except ServiceError:
            return self._offline_status(job_id)

    def _offline_status(self, job_id: Optional[int]) -> Dict[str, Any]:
        queue_path = os.path.join(self.spool, "queue.db")
        if not os.path.exists(queue_path):
            raise ServiceError(
                f"{self.spool}: no daemon and no queue.db — nothing "
                f"was ever submitted here"
            )
        with JobQueue(queue_path) as queue:
            jobs = (
                [j for j in [queue.get(job_id)] if j is not None]
                if job_id is not None
                else queue.jobs()
            )
            rows = []
            for job in jobs:
                row = job.describe()
                row["progress"] = job_progress(self.spool, job)
                rows.append(row)
            return {
                "ok": True,
                "pid": None,
                "offline": True,
                "queue": queue.depth(),
                "counters": queue.counters(),
                "jobs": rows,
            }

    def status_stream(
        self, job_id: Optional[int] = None
    ) -> Iterator[Dict[str, Any]]:
        """Streaming status (live daemon only)."""
        payload: Dict[str, Any] = {"op": "status", "follow": True}
        if job_id is not None:
            payload["job"] = job_id
        return self.request_stream(payload)

    def cancel(self, job_id: int) -> Dict[str, Any]:
        """Cancel one job (queued jobs cancel offline too)."""
        try:
            reply = self.request({"op": "cancel", "job": job_id})
        except ServiceError:
            queue_path = os.path.join(self.spool, "queue.db")
            if not os.path.exists(queue_path):
                raise
            with JobQueue(queue_path) as queue:
                state = queue.request_cancel(job_id)
            return {
                "ok": True, "job": job_id, "state": state,
                "offline": True,
            }
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "cancel refused"))
        return reply

    def drain(self) -> Dict[str, Any]:
        """Ask the daemon to drain (needs a live daemon)."""
        reply = self.request({"op": "drain"})
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "drain refused"))
        return reply
