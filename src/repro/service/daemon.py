"""The campaign-service daemon: socket endpoint + scheduler thread.

``repro serve`` runs one :class:`ServiceDaemon` over a **spool
directory** holding everything the service owns::

    <spool>/queue.db      durable job queue (sqlite, WAL)
    <spool>/results.db    shared results database (``repro analyze``)
    <spool>/jobs/<id>/    per-job checkpoint dir, output, telemetry
    <spool>/daemon.sock   the local socket (or a short /tmp fallback)
    <spool>/socket.path   where the socket actually is
    <spool>/daemon.pid    the daemon's pid while it serves

The socket speaks a JSON-line protocol: the client sends one request
object per line, the daemon answers with one response object per line
(the streaming ``status`` mode answers with one line per poll until
the client disconnects or every job is terminal).

Failure matrix (what survives what):

===============  ====================================================
SIGTERM/SIGINT   Clean drain: children flush checkpoints and exit,
                 their jobs requeue with the attempt refunded, the
                 socket closes, the queue stays durable.
``kill -9``      Nothing runs; on the next start the daemon reclaims
                 every lease whose pid is dead, kills orphaned job
                 children, and re-runs each interrupted job from its
                 checkpoint — final results are bit-identical to an
                 uninterrupted run.
pool loss        Handled *inside* the job by the executor (respawn →
                 reduced width → serial); a child that dies anyway is
                 retried by the scheduler on the degradation ladder.
===============  ====================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import socket
import threading
from typing import Any, Dict, Optional

from repro.errors import ServiceError
from repro.service.jobs import JobQueue
from repro.service.scheduler import (
    Scheduler,
    SchedulerConfig,
    job_progress,
    validate_spec,
)

__all__ = ["ServiceDaemon", "socket_path_for"]

#: portable AF_UNIX sun_path budget (the historical 104/108 minus
#: headroom); longer spool paths divert the socket to /tmp.
_MAX_SOCKET_PATH = 96


def socket_path_for(spool: str) -> str:
    """The socket path used for *spool* (short /tmp fallback when the
    spool path would overflow ``sun_path``)."""
    preferred = os.path.join(os.path.abspath(spool), "daemon.sock")
    if len(preferred) <= _MAX_SOCKET_PATH:
        return preferred
    digest = hashlib.sha256(preferred.encode("utf-8")).hexdigest()[:12]
    return os.path.join("/tmp", f"repro-{digest}.sock")


class ServiceDaemon:
    """One serving instance: queue + scheduler + socket endpoint."""

    def __init__(
        self,
        spool: str,
        config: Optional[SchedulerConfig] = None,
        max_queued: int = 64,
        drain_when_idle: bool = False,
        status_interval_s: float = 0.5,
        echo=print,
    ) -> None:
        self.spool = os.path.abspath(spool)
        os.makedirs(os.path.join(self.spool, "jobs"), exist_ok=True)
        self.queue = JobQueue(
            os.path.join(self.spool, "queue.db"), max_queued=max_queued
        )
        self.scheduler = Scheduler(self.spool, self.queue, config)
        self.drain_when_idle = drain_when_idle
        self.status_interval_s = status_interval_s
        self.echo = echo
        self._stop = threading.Event()
        self._server: Optional[socket.socket] = None
        self._conn_threads: list = []

    # -- status payloads ------------------------------------------------
    def status_payload(
        self, job_id: Optional[int] = None
    ) -> Dict[str, Any]:
        jobs = (
            [j for j in [self.queue.get(job_id)] if j is not None]
            if job_id is not None
            else self.queue.jobs()
        )
        rows = []
        for job in jobs:
            row = job.describe()
            row["progress"] = job_progress(self.spool, job)
            rows.append(row)
        return {
            "ok": True,
            "pid": os.getpid(),
            "draining": self._stop.is_set(),
            "queue": self.queue.depth(),
            "counters": self.queue.counters(),
            "jobs": rows,
        }

    def _all_terminal(self) -> bool:
        depth = self.queue.depth()
        return depth["queued"] == 0 and depth["running"] == 0

    # -- request handling -----------------------------------------------
    def _handle_request(
        self, request: Dict[str, Any], send_line
    ) -> None:
        op = request.get("op")
        if op == "ping":
            send_line({"ok": True, "pid": os.getpid()})
        elif op == "submit":
            try:
                spec = validate_spec(request.get("spec"))
                job_id = self.queue.submit(spec)
            except ServiceError as exc:
                send_line({"ok": False, "error": str(exc)})
            else:
                send_line({"ok": True, "job": job_id})
        elif op == "status":
            job_id = request.get("job")
            if not request.get("follow"):
                send_line(self.status_payload(job_id))
                return
            # streaming mode: one status line per poll until every
            # job is terminal (or the client hangs up / we drain).
            # The stop flag is sampled *before* the snapshot so the
            # last line a client sees reflects the post-drain state,
            # never a stale mid-run one.
            while True:
                stopping = self._stop.is_set()
                payload = self.status_payload(job_id)
                payload["final"] = self._all_terminal() or stopping
                send_line(payload)
                if payload["final"]:
                    return
                self._stop.wait(self.status_interval_s)
        elif op == "cancel":
            try:
                job_id = int(request.get("job"))
            except (TypeError, ValueError):
                send_line({"ok": False, "error": "cancel needs a job id"})
                return
            state = self.queue.request_cancel(job_id)
            send_line({"ok": True, "job": job_id, "state": state})
        elif op == "drain":
            send_line({"ok": True, "draining": True})
            self._stop.set()
        else:
            send_line({"ok": False, "error": f"unknown op {op!r}"})

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                reader = conn.makefile("r", encoding="utf-8")
                writer = conn.makefile("w", encoding="utf-8")

                def send_line(payload: Dict[str, Any]) -> None:
                    writer.write(
                        json.dumps(payload, separators=(",", ":")) + "\n"
                    )
                    writer.flush()

                line = reader.readline()
                if not line.strip():
                    return
                try:
                    request = json.loads(line)
                except ValueError:
                    send_line({"ok": False, "error": "not a JSON request"})
                    return
                self._handle_request(request, send_line)
        except (OSError, ValueError):
            pass  # client went away mid-reply; nothing to clean up

    # -- lifecycle ------------------------------------------------------
    def _install_signals(self) -> None:
        # signal handlers can only be installed from the main thread;
        # a daemon hosted in a worker thread (tests, embedding) leaves
        # signal handling to its host and drains via the drain op
        if threading.current_thread() is not threading.main_thread():
            return

        def initiate_drain(signum, frame):
            self._stop.set()

        signal.signal(signal.SIGTERM, initiate_drain)
        signal.signal(signal.SIGINT, initiate_drain)

    def serve(self) -> int:
        """Run until drained; returns a process exit code."""
        socket_path = socket_path_for(self.spool)
        with open(
            os.path.join(self.spool, "socket.path"), "w",
            encoding="utf-8",
        ) as handle:
            handle.write(socket_path + "\n")
        pid_path = os.path.join(self.spool, "daemon.pid")
        with open(pid_path, "w", encoding="utf-8") as handle:
            handle.write(f"{os.getpid()}\n")
        # startup recovery: anything still leased by a dead pid was
        # orphaned by a crash — reclaim it before accepting work
        reclaimed = self.queue.reclaim_stale(0.0)
        if reclaimed:
            self.echo(
                f"recovered {len(reclaimed)} interrupted job(s): "
                + ", ".join(f"#{job.id}" for job in reclaimed)
            )
        if os.path.exists(socket_path):
            os.remove(socket_path)  # stale socket of a dead daemon
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(socket_path)
        server.listen(16)
        server.settimeout(0.2)
        self._server = server
        self._install_signals()
        scheduler_thread = threading.Thread(
            target=self.scheduler.run, args=(self._stop,),
            name="repro-scheduler", daemon=False,
        )
        scheduler_thread.start()
        self.echo(
            f"serving on {socket_path} "
            f"(budget {self.scheduler.config.budget}, "
            f"max {self.scheduler.config.max_jobs} jobs)"
        )
        try:
            while not self._stop.is_set():
                if self.drain_when_idle and self._all_terminal():
                    depth = self.queue.depth()
                    if sum(depth.values()) > 0:
                        self._stop.set()
                        break
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                worker = threading.Thread(
                    target=self._serve_connection, args=(conn,),
                    daemon=True,
                )
                worker.start()
                self._conn_threads.append(worker)
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
        finally:
            self._stop.set()
            scheduler_thread.join()
            # streaming clients wake on the stop event and send one
            # final post-drain snapshot; give them a moment to do so
            # before the queue connection goes away beneath them
            for worker in self._conn_threads:
                worker.join(timeout=2.0)
            try:
                server.close()
            except OSError:
                pass
            for path in (socket_path, pid_path):
                try:
                    os.remove(path)
                except OSError:
                    pass
            self.queue.close()
        depth = self.queue.depth()
        self.echo(
            f"drained: {depth['done']} done, {depth['failed']} failed, "
            f"{depth['cancelled']} cancelled, {depth['queued']} requeued"
        )
        return 0
