"""The durable sqlite-backed job queue of the campaign service.

One ``queue.db`` file per spool directory holds every job the daemon
has ever been asked to run, plus a small table of monotonic fault/
progress counters.  The design mirrors :mod:`repro.fi.store`: WAL
journaling, an explicit ``busy_timeout``, and every state transition
expressed as a single guarded ``UPDATE ... WHERE state = ?`` so that
transitions are atomic — two schedulers (or a scheduler racing its
own crash-recovery path) can never both claim the same job.

Job lifecycle::

    queued --claim--> running --finish--> done | failed | cancelled
       ^                 |
       +----requeue------+   (drain, lease reclaim, retry)

A claim takes a **lease**: the claiming scheduler's identity, pid and
a heartbeat timestamp.  A running job whose lease has expired *and*
whose scheduler pid is no longer alive is presumed orphaned by a
``kill -9`` and is reclaimed back to ``queued`` (its recorded child
process, if still alive, is killed first so no two writers ever share
a checkpoint).  Clean requeues (drain, reclaim) give the consumed
attempt back; retry requeues after a real failure keep it, which is
what drives the scheduler's width-degradation ladder.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ServiceError

__all__ = ["JOB_STATES", "Job", "JobQueue"]

#: every state a job can be in; the first is the submission state.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               INTEGER PRIMARY KEY,
    spec             TEXT NOT NULL,
    state            TEXT NOT NULL DEFAULT 'queued',
    submitted_ts     REAL NOT NULL,
    started_ts       REAL,
    finished_ts      REAL,
    attempts         INTEGER NOT NULL DEFAULT 0,
    workers          INTEGER NOT NULL DEFAULT 0,
    degraded         TEXT,
    error            TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    lease_owner      TEXT,
    lease_pid        INTEGER,
    lease_ts         REAL,
    child_pid        INTEGER
);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL DEFAULT 0
);
"""


def _pid_alive(pid: Optional[int]) -> bool:
    """Whether *pid* names a live process (signal-0 probe)."""
    if not pid or pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, not ours
        return True
    return True


@dataclass(frozen=True)
class Job:
    """One row of the queue, decoded."""

    id: int
    spec: Dict[str, Any]
    state: str
    submitted_ts: float
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    attempts: int = 0
    workers: int = 0
    degraded: Optional[str] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    lease_owner: Optional[str] = None
    lease_pid: Optional[int] = None
    lease_ts: Optional[float] = None
    child_pid: Optional[int] = None
    #: derived, not stored: free-form per-campaign progress rows.
    progress: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self) -> Dict[str, Any]:
        """JSON-ready status row (what the daemon streams)."""
        return {
            "id": self.id,
            "experiment": self.spec.get("experiment", "?"),
            "state": self.state,
            "attempts": self.attempts,
            "workers": self.workers,
            "degraded": self.degraded,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "progress": self.progress,
        }


_JOB_COLUMNS = (
    "id, spec, state, submitted_ts, started_ts, finished_ts, attempts, "
    "workers, degraded, error, cancel_requested, lease_owner, lease_pid, "
    "lease_ts, child_pid"
)


def _row_to_job(row) -> Job:
    (
        job_id, spec, state, submitted_ts, started_ts, finished_ts,
        attempts, workers, degraded, error, cancel_requested,
        lease_owner, lease_pid, lease_ts, child_pid,
    ) = row
    return Job(
        id=job_id,
        spec=json.loads(spec),
        state=state,
        submitted_ts=submitted_ts,
        started_ts=started_ts,
        finished_ts=finished_ts,
        attempts=attempts,
        workers=workers,
        degraded=degraded,
        error=error,
        cancel_requested=bool(cancel_requested),
        lease_owner=lease_owner,
        lease_pid=lease_pid,
        lease_ts=lease_ts,
        child_pid=child_pid,
    )


class JobQueue:
    """Durable campaign job queue over one sqlite file.

    *max_queued* bounds admission: submissions beyond that many
    non-terminal jobs are refused with :class:`ServiceError` — the
    backpressure signal clients see instead of an unbounded backlog.
    """

    def __init__(self, path: str, max_queued: int = 64) -> None:
        if max_queued < 1:
            raise ServiceError(
                f"max_queued must be >= 1, got {max_queued}"
            )
        self.path = str(path)
        self.max_queued = max_queued
        self._conn: Optional[sqlite3.Connection] = None
        #: serializes every queue operation: the daemon touches the
        #: queue from its scheduler thread, its connection-handler
        #: threads, and its main thread over one connection
        self._lock = threading.RLock()

    # -- connection -----------------------------------------------------
    @property
    def connection(self) -> sqlite3.Connection:
        if self._conn is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            conn = sqlite3.connect(
                self.path, timeout=30.0, check_same_thread=False
            )
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute("PRAGMA busy_timeout=30000")
                conn.executescript(_SCHEMA)
                conn.commit()
            except sqlite3.Error as exc:
                try:
                    conn.close()
                except sqlite3.Error:
                    pass
                raise ServiceError(
                    f"{self.path}: not a usable job queue ({exc})"
                ) from exc
            self._conn = conn
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submission / admission -----------------------------------------
    def submit(self, spec: Dict[str, Any]) -> int:
        """Enqueue one job; returns its id.

        Raises :class:`ServiceError` when the queue is at its
        admission bound (counting every non-terminal job) — callers
        should back off and resubmit, not retry in a tight loop.
        """
        if not isinstance(spec, dict) or "experiment" not in spec:
            raise ServiceError(
                "a job spec is a JSON object with at least an "
                "'experiment' key"
            )
        with self._lock:
            conn = self.connection
            with conn:  # one transaction: the admission check is atomic
                (backlog,) = conn.execute(
                    "SELECT COUNT(*) FROM jobs "
                    "WHERE state IN ('queued', 'running')"
                ).fetchone()
                if backlog >= self.max_queued:
                    raise ServiceError(
                        f"queue full: {backlog} jobs queued or running "
                        f"(admission bound {self.max_queued}); retry later"
                    )
                cursor = conn.execute(
                    "INSERT INTO jobs (spec, state, submitted_ts) "
                    "VALUES (?, 'queued', ?)",
                    (json.dumps(spec, separators=(",", ":")), time.time()),
                )
            job_id = cursor.lastrowid
        assert job_id is not None
        return job_id

    # -- claims and leases ----------------------------------------------
    def claim(
        self, owner: str, pid: int, exclude: Sequence[int] = ()
    ) -> Optional[Job]:
        """Atomically claim the oldest queued job; ``None`` = empty.

        *exclude* skips job ids the caller is not ready to run yet
        (retry backoff).  The claim is a guarded UPDATE: if another
        scheduler (or a concurrent thread) wins the row between our
        SELECT and UPDATE, the rowcount is 0 and we simply try the
        next row.
        """
        excluded = set(int(job_id) for job_id in exclude)
        with self._lock:
            conn = self.connection
            while True:
                row = None
                for candidate in conn.execute(
                    "SELECT id FROM jobs WHERE state = 'queued' "
                    "AND cancel_requested = 0 ORDER BY id"
                ):
                    if candidate[0] not in excluded:
                        row = candidate
                        break
                if row is None:
                    return None
                now = time.time()
                with conn:
                    cursor = conn.execute(
                        "UPDATE jobs SET state = 'running', "
                        "attempts = attempts + 1, lease_owner = ?, "
                        "lease_pid = ?, lease_ts = ?, child_pid = NULL, "
                        "started_ts = COALESCE(started_ts, ?) "
                        "WHERE id = ? AND state = 'queued'",
                        (owner, pid, now, now, row[0]),
                    )
                if cursor.rowcount == 1:
                    return self.get(row[0])

    def heartbeat(self, job_id: int) -> None:
        """Refresh a running job's lease timestamp."""
        with self._lock, self.connection as conn:
            conn.execute(
                "UPDATE jobs SET lease_ts = ? "
                "WHERE id = ? AND state = 'running'",
                (time.time(), job_id),
            )

    def set_child(self, job_id: int, child_pid: Optional[int]) -> None:
        """Record the forked child actually executing the job."""
        with self._lock, self.connection as conn:
            conn.execute(
                "UPDATE jobs SET child_pid = ? "
                "WHERE id = ? AND state = 'running'",
                (child_pid, job_id),
            )

    def set_workers(
        self, job_id: int, workers: int, degraded: Optional[str] = None
    ) -> None:
        """Record the granted worker width (and any honest
        degradation note) in the job's status row."""
        with self._lock, self.connection as conn:
            conn.execute(
                "UPDATE jobs SET workers = ?, "
                "degraded = COALESCE(?, degraded) WHERE id = ?",
                (workers, degraded, job_id),
            )

    def reclaim_stale(self, lease_timeout_s: float) -> List[Job]:
        """Requeue running jobs whose scheduler is gone.

        A lease is stale when its heartbeat is older than
        *lease_timeout_s* **and** the leasing pid is dead (a live but
        slow scheduler keeps its jobs).  ``lease_timeout_s = 0``
        reclaims every dead-pid lease immediately — the daemon's own
        startup recovery after a ``kill -9``.  Recorded child
        processes that are still alive are killed before the requeue
        so the resumed job never races its orphaned predecessor over
        one checkpoint.
        """
        horizon = time.time() - lease_timeout_s
        stale: List[Job] = []
        with self._lock:
            rows = self.connection.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs "
                f"WHERE state = 'running' "
                f"AND (lease_ts IS NULL OR lease_ts <= ?)",
                (horizon,),
            ).fetchall()
            for row in rows:
                job = _row_to_job(row)
                if _pid_alive(job.lease_pid):
                    continue  # scheduler is alive, just slow: keep lease
                if _pid_alive(job.child_pid):
                    try:
                        os.kill(job.child_pid, signal.SIGKILL)
                    except OSError:  # pragma: no cover - raced its exit
                        pass
                if self.requeue(job.id, give_back_attempt=True):
                    self.bump("leases_reclaimed")
                    stale.append(job)
        return stale

    # -- state transitions ----------------------------------------------
    def requeue(self, job_id: int, give_back_attempt: bool) -> bool:
        """running → queued (drain, reclaim, retry); returns success.

        *give_back_attempt* refunds the attempt the claim consumed —
        clean requeues (drain, lease reclaim) are not the job's
        fault, so they must not march it down the degradation
        ladder.
        """
        refund = 1 if give_back_attempt else 0
        with self._lock, self.connection as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = 'queued', "
                "attempts = MAX(attempts - ?, 0), lease_owner = NULL, "
                "lease_pid = NULL, lease_ts = NULL, child_pid = NULL "
                "WHERE id = ? AND state = 'running'",
                (refund, job_id),
            )
        return cursor.rowcount == 1

    def finish(
        self, job_id: int, state: str, error: Optional[str] = None
    ) -> bool:
        """running → done | failed | cancelled; returns success."""
        if state not in TERMINAL_STATES:
            raise ServiceError(f"not a terminal job state: {state!r}")
        with self._lock, self.connection as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, error = ?, finished_ts = ?, "
                "lease_owner = NULL, lease_pid = NULL, lease_ts = NULL, "
                "child_pid = NULL "
                "WHERE id = ? AND state = 'running'",
                (state, error, time.time(), job_id),
            )
        return cursor.rowcount == 1

    def request_cancel(self, job_id: int) -> str:
        """Cancel a job; returns the resulting state.

        A queued job cancels immediately; a running one is flagged
        (the scheduler stops its child and finishes the transition);
        a terminal one is left alone.
        """
        with self._lock:
            conn = self.connection
            with conn:
                cursor = conn.execute(
                    "UPDATE jobs SET state = 'cancelled', finished_ts = ? "
                    "WHERE id = ? AND state = 'queued'",
                    (time.time(), job_id),
                )
                if cursor.rowcount == 1:
                    return "cancelled"
                conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 "
                    "WHERE id = ? AND state = 'running'",
                    (job_id,),
                )
            job = self.get(job_id)
        return job.state if job is not None else "unknown"

    # -- queries --------------------------------------------------------
    def get(self, job_id: int) -> Optional[Job]:
        with self._lock:
            row = self.connection.execute(
                f"SELECT {_JOB_COLUMNS} FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return _row_to_job(row) if row is not None else None

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        query = f"SELECT {_JOB_COLUMNS} FROM jobs"
        args: tuple = ()
        if state is not None:
            query += " WHERE state = ?"
            args = (state,)
        query += " ORDER BY id"
        with self._lock:
            rows = self.connection.execute(query, args).fetchall()
        return [_row_to_job(row) for row in rows]

    def depth(self) -> Dict[str, int]:
        """Job count per state (zero-count states included)."""
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            rows = self.connection.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        for state, count in rows:
            counts[state] = count
        return counts

    # -- counters -------------------------------------------------------
    def bump(self, name: str, delta: int = 1) -> None:
        """Increment one monotonic fault/progress counter."""
        with self._lock, self.connection as conn:
            conn.execute(
                "INSERT INTO counters (name, value) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET value = value + ?",
                (name, delta, delta),
            )

    def counters(self) -> Dict[str, int]:
        with self._lock:
            rows = self.connection.execute(
                "SELECT name, value FROM counters ORDER BY name"
            ).fetchall()
        return dict(rows)
