"""Supervised scheduling of queued campaigns over a shared budget.

The scheduler is the daemon's engine room: each tick it

1. fires the ``REPRO_CHAOS_KILL_SERVICE`` chaos hook (tests/CI kill
   the daemon at a chosen tick, including while a child is mid-
   checkpoint-flush);
2. reaps finished job children — success finishes the job, an
   interrupted child (checkpoint flushed) requeues it, a failed child
   retries it with decorrelated-jitter backoff until its attempt
   budget runs out;
3. honours cancel requests against running children;
4. heartbeats the leases of everything it is running and reclaims
   leases whose scheduler died (pid-liveness probe);
5. claims new work while it has free budget, granting each job a
   fair share of the worker budget so one huge sweep cannot starve
   small jobs.

Jobs execute as **forked child processes** (:func:`_job_main`): they
inherit the daemon's warmed golden-run cache through the fork, run
the requested experiment through the ordinary
:class:`~repro.experiments.context.ExperimentContext` machinery with
``resume=True`` against a per-job checkpoint directory, and convert
SIGTERM into ``KeyboardInterrupt`` so the executor's
flush-on-every-exit-path guarantee holds during a drain.

Degradation ladder: the first attempt runs at the granted width; a
retry halves it; from the third attempt on the job runs serial.  The
current width and an honest note travel in the job's status row, so
``repro status`` never claims more parallelism than the job really
has.  (The executor adds its own inner ladder — pool respawn, then
in-campaign serial degradation — underneath each attempt.)
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ServiceError
from repro.fi.executor import MAX_BACKOFF_S, decorrelated_backoff
from repro.service.jobs import Job, JobQueue

__all__ = [
    "Scheduler",
    "SchedulerConfig",
    "RunningJob",
    "job_progress",
]

#: child exit code meaning "interrupted, checkpoint flushed, requeue
#: me" (SIGTERM drain, KeyboardInterrupt).  BSD's EX_TEMPFAIL.
EXIT_INTERRUPTED = 75

#: spec keys a submission may carry; everything else is refused so a
#: typo ("targt") surfaces at submit time, not as a silent default.
SPEC_KEYS = frozenset({
    "experiment", "scale", "seed", "target", "jobs", "backend",
    "store", "batch_width", "adaptive", "run_name", "retries",
    "task_timeout", "audit_fraction", "integrity_policy", "env",
})


def validate_spec(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Check a job spec's shape; returns it unchanged.

    Validation that needs the experiment machinery (unknown target,
    bad scale) happens in the child and surfaces as a failed job;
    this catches the structural mistakes at the submission boundary.
    """
    if not isinstance(spec, dict):
        raise ServiceError("a job spec must be a JSON object")
    unknown = set(spec) - SPEC_KEYS
    if unknown:
        raise ServiceError(
            f"unknown job spec keys: {sorted(unknown)} "
            f"(accepted: {sorted(SPEC_KEYS)})"
        )
    from repro.experiments.runner import EXPERIMENTS

    experiment = spec.get("experiment")
    if experiment not in EXPERIMENTS:
        raise ServiceError(
            f"unknown experiment {experiment!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        )
    env = spec.get("env")
    if env is not None and not isinstance(env, dict):
        raise ServiceError("spec 'env' must be an object of strings")
    return spec


# ======================================================================
# The job child.
# ======================================================================
def _raise_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt()


def _job_main(
    job_id: int,
    spec: Dict[str, Any],
    job_dir: str,
    width: int,
    results_db: str,
    attempt: int,
) -> None:
    """Entry point of a forked job child; never returns."""
    # a drain's SIGTERM becomes KeyboardInterrupt so the executor's
    # finally-block flushes the checkpoint before we exit
    signal.signal(signal.SIGTERM, _raise_interrupt)
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # daemon owns Ctrl-C
    # service-level chaos hooks target the daemon, not its jobs; a
    # job opts into child-side chaos through its spec env, and only
    # on the first attempt, so the retry can prove recovery
    os.environ.pop("REPRO_CHAOS_KILL_SERVICE", None)
    os.environ.pop("REPRO_CHAOS_KILL_FLUSH", None)
    env = spec.get("env") or {}
    if attempt == 1:
        for name, value in env.items():
            os.environ[str(name)] = str(value)
    # exit via SystemExit, not os._exit: multiprocessing's bootstrap
    # then runs the child's pool teardown before reporting the code
    # to the scheduler.  Interpreter-exit finalizers still don't run
    # in a multiprocessing child, so shared-memory segments are
    # released explicitly on every path.
    from repro.fi.shm import release_all

    try:
        try:
            output, telemetry = _run_experiment(
                job_id, spec, job_dir, width, results_db
            )
        except KeyboardInterrupt:
            raise SystemExit(EXIT_INTERRUPTED) from None
        except SystemExit:
            raise
        except BaseException:
            with open(
                os.path.join(job_dir, "error.txt"), "w", encoding="utf-8"
            ) as handle:
                handle.write(traceback.format_exc())
            raise SystemExit(1) from None
        with open(
            os.path.join(job_dir, "output.txt"), "w", encoding="utf-8"
        ) as handle:
            handle.write(output)
        with open(
            os.path.join(job_dir, "telemetry.json"), "w",
            encoding="utf-8",
        ) as handle:
            json.dump(telemetry, handle)
        raise SystemExit(0)
    finally:
        release_all()


def _run_experiment(
    job_id: int,
    spec: Dict[str, Any],
    job_dir: str,
    width: int,
    results_db: str,
) -> Tuple[str, Dict[str, Any]]:
    from repro.experiments.context import ExperimentContext
    from repro.experiments.runner import EXPERIMENTS

    ctx = ExperimentContext(
        scale=str(spec.get("scale", "test")),
        seed=int(spec.get("seed", 2002)),
        target=str(spec.get("target", "arrestment")),
        jobs=width,
        backend=spec.get("backend"),
        resume=True,
        checkpoint_dir=os.path.join(job_dir, "ckpt"),
        task_timeout=spec.get("task_timeout"),
        retries=spec.get("retries"),
        event_log=os.path.join(job_dir, "events.jsonl"),
        batch_width=int(spec.get("batch_width", 0)),
        audit_fraction=float(spec.get("audit_fraction", 0.0)),
        integrity_policy=spec.get("integrity_policy"),
        adaptive=bool(spec.get("adaptive", False)),
        store_backend=spec.get("store"),
        results_db=results_db,
        run_name=spec.get("run_name") or f"job{job_id}",
    )
    result = EXPERIMENTS[spec["experiment"]](ctx)
    telemetry: Dict[str, Any] = {}
    for campaign, t in ctx.telemetries.items():
        telemetry[campaign] = {
            "backend": t.backend,
            "jobs": t.jobs,
            "executed_runs": t.executed_runs,
            "failures": t.failures,
            "retries": t.retries,
            "pool_respawns": t.pool_respawns,
            "degraded": t.degraded,
        }
    return result.render() + "\n", telemetry


# ======================================================================
# The scheduler.
# ======================================================================
@dataclass(frozen=True)
class SchedulerConfig:
    """Supervision policy of one scheduler."""

    #: total worker-process budget shared by all running jobs.
    budget: int = max(2, (os.cpu_count() or 2))
    #: running jobs at any moment (the fair-share denominator cap).
    max_jobs: int = 4
    #: extra attempts a failing job gets before it is failed.
    job_retries: int = 2
    #: base of the decorrelated-jitter retry backoff, seconds.
    backoff_base_s: float = 0.5
    #: seed of the backoff jitter stream (tests pin it).
    backoff_seed: Optional[int] = None
    #: heartbeat age beyond which a dead scheduler's lease is
    #: reclaimed.
    lease_timeout_s: float = 30.0
    #: grace between SIGTERM and SIGKILL when stopping a child.
    stop_grace_s: float = 30.0
    #: pre-warm the daemon's golden-run cache per (target, scale) so
    #: forked jobs inherit it.
    prewarm: bool = True

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ServiceError(f"budget must be >= 1, got {self.budget}")
        if self.max_jobs < 1:
            raise ServiceError(
                f"max_jobs must be >= 1, got {self.max_jobs}"
            )
        if self.job_retries < 0:
            raise ServiceError(
                f"job_retries must be >= 0, got {self.job_retries}"
            )


@dataclass
class RunningJob:
    """Scheduler-side handle of one forked job child."""

    job: Job
    process: Any  # multiprocessing.Process
    width: int
    cancelling: bool = False
    stopping_ts: Optional[float] = None


class Scheduler:
    """Claims, supervises and retires jobs from one queue."""

    def __init__(
        self,
        spool: str,
        queue: JobQueue,
        config: Optional[SchedulerConfig] = None,
    ) -> None:
        self.spool = str(spool)
        self.queue = queue
        self.config = config if config is not None else SchedulerConfig()
        self.owner = f"scheduler@{os.uname().nodename}"
        self.results_db = os.path.join(self.spool, "results.db")
        self._running: Dict[int, RunningJob] = {}
        self._not_before: Dict[int, float] = {}
        self._backoff_prev: Dict[int, float] = {}
        self._warmed: Set[Tuple[str, str]] = set()
        self._chaos_ticks = 0
        seed = self.config.backoff_seed
        self._rng = random.Random(seed if seed is not None else os.getpid())

    # -- directories ----------------------------------------------------
    def job_dir(self, job_id: int) -> str:
        path = os.path.join(self.spool, "jobs", str(job_id))
        os.makedirs(path, exist_ok=True)
        return path

    # -- one tick -------------------------------------------------------
    def tick(self) -> None:
        self._chaos_kill_service()
        self._reap()
        self._enforce_cancels()
        self._heartbeat()
        self.queue.reclaim_stale(self.config.lease_timeout_s)
        self._claim_work()

    def _chaos_kill_service(self) -> None:
        target = os.environ.get("REPRO_CHAOS_KILL_SERVICE")
        if not target:
            return
        try:
            nth = int(target)
        except ValueError:
            return
        self._chaos_ticks += 1
        if self._chaos_ticks == nth:
            os._exit(137)

    # -- reaping --------------------------------------------------------
    def _reap(self) -> None:
        for job_id in list(self._running):
            handle = self._running[job_id]
            if handle.process.is_alive():
                continue
            handle.process.join()
            del self._running[job_id]
            code = handle.process.exitcode
            if handle.cancelling:
                self.queue.finish(job_id, "cancelled", "cancelled")
                self.queue.bump("jobs_cancelled")
            elif code == 0:
                self._absorb_telemetry(job_id)
                self.queue.finish(job_id, "done")
                self.queue.bump("jobs_done")
            elif code == EXIT_INTERRUPTED:
                # externally interrupted with a flushed checkpoint:
                # not the job's fault, the attempt is refunded
                self.queue.requeue(job_id, give_back_attempt=True)
                self.queue.bump("jobs_requeued")
            else:
                self._retry_or_fail(job_id, handle, code)

    def _retry_or_fail(
        self, job_id: int, handle: RunningJob, code: Optional[int]
    ) -> None:
        job = self.queue.get(job_id)
        attempts = job.attempts if job is not None else 1
        error = self._job_error(job_id) or f"child exited with {code}"
        if attempts >= self.config.job_retries + 1:
            self.queue.finish(job_id, "failed", error)
            self.queue.bump("jobs_failed")
            return
        self.queue.requeue(job_id, give_back_attempt=False)
        self.queue.bump("jobs_retried")
        previous = self._backoff_prev.get(
            job_id, self.config.backoff_base_s
        )
        sleep_s = decorrelated_backoff(
            self.config.backoff_base_s, previous, self._rng,
            cap=MAX_BACKOFF_S,
        )
        self._backoff_prev[job_id] = max(
            sleep_s, self.config.backoff_base_s
        )
        self._not_before[job_id] = time.time() + sleep_s

    def _job_error(self, job_id: int) -> Optional[str]:
        path = os.path.join(self.job_dir(job_id), "error.txt")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().strip().splitlines()
        except OSError:
            return None
        return lines[-1] if lines else None

    def _absorb_telemetry(self, job_id: int) -> None:
        """Roll a finished job's executor telemetry into the queue's
        fault counters (pool respawns, in-campaign degradations)."""
        path = os.path.join(self.job_dir(job_id), "telemetry.json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                telemetry = json.load(handle)
        except (OSError, ValueError):
            return
        respawns = sum(
            int(t.get("pool_respawns", 0)) for t in telemetry.values()
        )
        degraded = sum(
            1 for t in telemetry.values() if t.get("degraded")
        )
        if respawns:
            self.queue.bump("pool_respawns", respawns)
        if degraded:
            self.queue.bump("degradations", degraded)

    # -- cancels, heartbeats --------------------------------------------
    def _enforce_cancels(self) -> None:
        for job_id, handle in list(self._running.items()):
            job = self.queue.get(job_id)
            if job is None or not job.cancel_requested:
                continue
            if not handle.cancelling:
                handle.cancelling = True
                self._stop_child(handle, time.time())
            self._escalate_stop(handle)

    def _stop_child(self, handle: RunningJob, now: float) -> None:
        handle.stopping_ts = now
        if handle.process.is_alive():
            try:
                handle.process.terminate()  # SIGTERM → checkpoint flush
            except OSError:  # pragma: no cover - raced its exit
                pass

    def _escalate_stop(self, handle: RunningJob) -> None:
        if handle.stopping_ts is None or not handle.process.is_alive():
            return
        if time.time() - handle.stopping_ts > self.config.stop_grace_s:
            try:
                handle.process.kill()
            except OSError:  # pragma: no cover - raced its exit
                pass

    def _heartbeat(self) -> None:
        for job_id in self._running:
            self.queue.heartbeat(job_id)

    # -- admission ------------------------------------------------------
    def _free_budget(self) -> int:
        used = sum(handle.width for handle in self._running.values())
        return self.config.budget - used

    def _grant(self, requested: int) -> int:
        """Fair-share width for one more job.

        The denominator anticipates the waiting queue (bounded by
        ``max_jobs``), so admitting a huge sweep first does not hand
        it the whole budget while small jobs wait behind it.
        """
        depth = self.queue.depth()
        ways = min(
            self.config.max_jobs,
            len(self._running) + 1 + depth["queued"],
        )
        share = max(1, self.config.budget // max(1, ways))
        return max(1, min(max(1, requested), share, self._free_budget()))

    def _claim_work(self) -> None:
        now = time.time()
        deferred = [
            job_id
            for job_id, eligible in self._not_before.items()
            if eligible > now
        ]
        while (
            len(self._running) < self.config.max_jobs
            and self._free_budget() >= 1
        ):
            job = self.queue.claim(
                self.owner, os.getpid(), exclude=deferred
            )
            if job is None:
                return
            self._launch(job)

    def _launch(self, job: Job) -> None:
        import multiprocessing

        requested = int(job.spec.get("jobs", 1))
        width = self._grant(requested)
        degraded = None
        if job.attempts >= 3:
            width, degraded = 1, f"attempt {job.attempts}: serial"
        elif job.attempts == 2:
            width = max(1, width // 2)
            degraded = f"attempt {job.attempts}: width {width}"
        self.queue.set_workers(job.id, width, degraded)
        self._not_before.pop(job.id, None)
        if self.config.prewarm:
            self._prewarm(job.spec)
        job_dir = self.job_dir(job.id)
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_job_main,
            args=(
                job.id, job.spec, job_dir, width,
                self.results_db, job.attempts,
            ),
            daemon=False,
        )
        process.start()
        self.queue.set_child(job.id, process.pid)
        self._running[job.id] = RunningJob(
            job=job, process=process, width=width
        )

    def _prewarm(self, spec: Dict[str, Any]) -> None:
        """Warm the daemon's golden cache for a job's (target, scale)
        so the forked child inherits the runs instead of recomputing
        them.  Best-effort: any failure is the child's to report."""
        key = (
            str(spec.get("target", "arrestment")),
            str(spec.get("scale", "test")),
        )
        if key in self._warmed:
            return
        self._warmed.add(key)
        try:
            from repro.experiments.context import SCALES
            from repro.fi.campaign import _target_label
            from repro.fi.executor import golden_cache
            from repro.targets import get_target

            target = get_target(key[0])
            stride = (
                SCALES[key[1]].test_case_stride if key[1] in SCALES else 1
            )
            factory = target.simulator_factory
            label = _target_label(factory)
            for case in list(target.standard_test_cases())[::stride]:
                golden_cache.get(label, factory, case)
        except Exception:
            pass

    # -- drain ----------------------------------------------------------
    def drain(self) -> int:
        """Stop every child cleanly and requeue its job; returns the
        number of jobs requeued.

        Children get SIGTERM (which they convert into a checkpoint-
        flushing ``KeyboardInterrupt``), then SIGKILL after the grace
        period.  Either way the job goes back to ``queued`` with its
        attempt refunded — the next daemon resumes it from whatever
        the flush persisted.
        """
        now = time.time()
        for handle in self._running.values():
            if not handle.cancelling:
                self._stop_child(handle, now)
        deadline = now + self.config.stop_grace_s
        requeued = 0
        while self._running:
            for job_id in list(self._running):
                handle = self._running[job_id]
                if handle.process.is_alive():
                    if time.time() > deadline:
                        try:
                            handle.process.kill()
                        except OSError:  # pragma: no cover
                            pass
                        handle.process.join()
                    else:
                        continue
                else:
                    handle.process.join()
                del self._running[job_id]
                if handle.cancelling:
                    self.queue.finish(job_id, "cancelled", "cancelled")
                    self.queue.bump("jobs_cancelled")
                elif handle.process.exitcode == 0:
                    self._absorb_telemetry(job_id)
                    self.queue.finish(job_id, "done")
                    self.queue.bump("jobs_done")
                else:
                    self.queue.requeue(job_id, give_back_attempt=True)
                    self.queue.bump("jobs_requeued")
                    requeued += 1
            if self._running:
                time.sleep(0.05)
        return requeued

    def run(self, stop_event) -> None:
        """Tick until *stop_event*, then drain."""
        poll_s = 0.2
        while not stop_event.is_set():
            self.tick()
            stop_event.wait(poll_s)
        self.drain()


# ======================================================================
# Progress inspection (used by the status endpoint).
# ======================================================================
def job_progress(spool: str, job: Job) -> List[Dict[str, Any]]:
    """Per-campaign progress rows of one job, read from its
    checkpoint store (works while the job is running: WAL readers
    never block the writer)."""
    ckpt = os.path.join(spool, "jobs", str(job.id), "ckpt")
    if not os.path.isdir(ckpt):
        return []
    from repro.fi.store import JsonCheckpointStore, SqliteResultStore

    rows: List[Dict[str, Any]] = []
    sqlite_path = os.path.join(ckpt, "results.db")
    try:
        if os.path.exists(sqlite_path):
            with SqliteResultStore(sqlite_path) as store:
                campaigns = store.list_campaigns()
        else:
            campaigns = []
            for name in sorted(os.listdir(ckpt)):
                if not name.endswith(".json"):
                    continue
                campaigns.extend(
                    JsonCheckpointStore(
                        os.path.join(ckpt, name)
                    ).list_campaigns()
                )
    except Exception:
        return []
    for stored in campaigns:
        rows.append({
            "campaign": stored.campaign,
            "done": stored.completed,
            "total": stored.n_tasks,
            "failures": stored.failures,
        })
    return rows
