"""Campaign-as-a-service: the long-running fault-injection daemon.

The one-shot CLI drivers run a campaign and exit; this package turns
the same machinery into infrastructure.  A daemon (``repro serve``)
owns a spool directory with

* a **durable job queue** (:mod:`repro.service.jobs`) — campaign
  submissions persisted in sqlite with atomic state transitions
  (``queued → running → done | failed | cancelled``), lease-based
  claims with heartbeats, and bounded admission;
* a **supervising scheduler** (:mod:`repro.service.scheduler`) —
  claimed jobs run as forked child processes over one shared worker
  budget with fair-share grants, job-level retry with
  decorrelated-jitter backoff, a degradation ladder (full width →
  halved width → serial) that is reported honestly in job status,
  clean SIGTERM/SIGINT drain (children flush their checkpoints, jobs
  requeue), and ``kill -9`` recovery (dead leases reclaimed by
  pid-liveness, orphaned children killed, jobs resumed from their
  checkpoints — bit-identical to an uninterrupted run);
* a **local socket endpoint** (:mod:`repro.service.daemon`) speaking
  a JSON-line protocol for ``repro submit | status | cancel | drain``
  (:mod:`repro.service.client`), with a streaming ``status`` mode
  reporting per-campaign progress and queue/fault counters.

Because job children are forked from the daemon, they inherit
whatever the daemon's process-wide golden-run cache
(:data:`repro.fi.executor.golden_cache`) holds at fork time; the
scheduler pre-warms it per target so concurrent campaigns of the same
target share golden runs instead of recomputing them.

Chaos hooks (test/CI only): ``REPRO_CHAOS_KILL_SERVICE=<n>`` hard-
kills the daemon on its *n*-th scheduler tick;
``REPRO_CHAOS_KILL_FLUSH=<n>`` (see :mod:`repro.fi.store`) hard-kills
a job child during its *n*-th checkpoint flush, before the bytes
become durable.
"""

from repro.service.client import (
    ServiceClient,
    default_spool,
)
from repro.service.daemon import ServiceDaemon
from repro.service.jobs import (
    JOB_STATES,
    Job,
    JobQueue,
)
from repro.service.scheduler import Scheduler, SchedulerConfig

__all__ = [
    "JOB_STATES",
    "Job",
    "JobQueue",
    "Scheduler",
    "SchedulerConfig",
    "ServiceClient",
    "ServiceDaemon",
    "default_spool",
]
