"""Whole-run golden-run comparison: propagation timelines.

The paper's campaigns reduce each injected run to per-pair yes/no
outcomes.  The underlying golden-run comparison carries much more
information: *which* signals diverged and *in what order* — the
observable trace of an error propagating through the system.  This
module reconstructs that timeline:

* :class:`SignalDivergence` — one signal's first divergence (tick,
  golden vs injected value);
* :class:`PropagationTimeline` — all divergences of a run, ordered by
  time, with helpers to check observed orderings against the signal
  graph (an error can only reach a signal after one of its graph
  predecessors — or the injection itself — has diverged);
* :func:`compare_runs` — build the timeline from two
  :class:`~repro.target.simulation.SignalTraces`.

Useful both for debugging the target and as an oracle in tests: the
observed propagation order must be consistent with the static signal
graph.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import AnalysisError
from repro.model.graph import SignalGraph
from repro.target.simulation import SignalTraces

__all__ = ["SignalDivergence", "PropagationTimeline", "compare_runs"]


@dataclass(frozen=True)
class SignalDivergence:
    """First divergence of one signal between golden and injected run."""

    signal: str
    tick: int
    golden_value: Optional[object]
    injected_value: Optional[object]

    def describe(self) -> str:
        return (
            f"t={self.tick}: {self.signal} "
            f"{self.golden_value!r} -> {self.injected_value!r}"
        )


class PropagationTimeline:
    """All first divergences of one injected run, time-ordered."""

    def __init__(self, divergences: Sequence[SignalDivergence]):
        self.divergences = sorted(
            divergences, key=lambda d: (d.tick, d.signal)
        )
        self._by_signal = {d.signal: d for d in self.divergences}
        if len(self._by_signal) != len(self.divergences):
            raise AnalysisError(
                "duplicate signal in propagation timeline"
            )

    def __len__(self) -> int:
        return len(self.divergences)

    def __bool__(self) -> bool:
        return bool(self.divergences)

    def diverged(self, signal: str) -> bool:
        return signal in self._by_signal

    def divergence_of(self, signal: str) -> Optional[SignalDivergence]:
        return self._by_signal.get(signal)

    def first(self) -> Optional[SignalDivergence]:
        return self.divergences[0] if self.divergences else None

    def order(self) -> List[str]:
        """Signals in order of first divergence."""
        return [d.signal for d in self.divergences]

    def reached_output(self, graph: SignalGraph) -> bool:
        outputs = set(graph.system.system_outputs())
        return any(d.signal in outputs for d in self.divergences)

    def consistent_with(
        self, graph: SignalGraph, origin: Optional[str] = None
    ) -> List[str]:
        """Check the timeline against the signal graph.

        Every diverged signal must either be the *origin* (the
        injection point, when known), a system input (environment
        feedback can disturb any sensor), a direct successor of the
        origin (a corruption of the origin's backing store between
        producer writes never appears in the origin's own write
        trace, but its consumers see it), or have a graph predecessor
        that diverged no later than it did.  Returns the list of
        inconsistent signals (empty = consistent).
        """
        inputs = set(graph.system.system_inputs())
        problems: List[str] = []
        for divergence in self.divergences:
            signal = divergence.signal
            if signal == origin or signal in inputs:
                continue
            predecessors = {
                edge.in_signal for edge in graph.in_edges(signal)
            }
            if origin is not None and origin in predecessors:
                continue
            explained = any(
                other is not None and other.tick <= divergence.tick
                for other in (
                    self._by_signal.get(pred) for pred in predecessors
                )
            )
            if not explained:
                problems.append(signal)
        return problems

    def render(self) -> str:
        if not self.divergences:
            return "no divergence (the runs are identical)"
        lines = ["propagation timeline:"]
        lines.extend(f"  {d.describe()}" for d in self.divergences)
        return "\n".join(lines)


def compare_runs(
    golden: SignalTraces,
    injected: SignalTraces,
    signals: Optional[Sequence[str]] = None,
) -> PropagationTimeline:
    """Build the propagation timeline of an injected run.

    *signals* restricts the comparison; by default every signal traced
    in either run is compared.  For each diverging signal the values
    at the divergence point are extracted (``None`` for a missing
    write when one stream is shorter).
    """
    names = (
        list(signals)
        if signals is not None
        else sorted(set(golden.signals()) | set(injected.signals()))
    )
    divergences: List[SignalDivergence] = []
    for name in names:
        tick = golden.first_difference(injected, name)
        if tick is None:
            continue
        golden_value = _value_at(golden, name, tick)
        injected_value = _value_at(injected, name, tick)
        divergences.append(
            SignalDivergence(
                signal=name,
                tick=tick,
                golden_value=golden_value,
                injected_value=injected_value,
            )
        )
    return PropagationTimeline(divergences)


def _value_at(traces: SignalTraces, signal: str, tick: int):
    """The value written at *tick* (or the nearest earlier write)."""
    ticks = traces.ticks_of(signal)
    idx = bisect_right(ticks, tick)
    if not idx:
        return None
    return traces.values_of(signal)[idx - 1]
