"""Fault injector: applies an error-model specification to a run.

One :class:`FaultInjector` executes exactly one injection
specification (see :mod:`repro.fi.models`) against one simulator run,
through the simulator's hook points:

* system-input flips strike in the pre-tick phase, right after the
  environment refreshed the sensor registers;
* module-input flips strike in the argument-marshaling hook of the
  targeted module;
* periodic RAM flips strike state cells / signal backing stores in the
  pre-tick phase at every period boundary;
* periodic stack flips are *armed* at every period boundary and strike
  the owning module's next argument marshaling or local write.

Every applied flip is recorded as an :class:`InjectionEvent`, so a
campaign can tell whether (and when) the error was actually introduced
— the paper only counts errors "injected before the arrestment ... was
completed" as active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import InjectionError
from repro.fi.memory import CellKind, MemoryLocation, Region
from repro.fi.models import (
    InputSignalFlip,
    ModuleInputFlip,
    PeriodicMemoryFlip,
)
from repro.model.signal import Number, flip_bit

__all__ = ["InjectionEvent", "FaultInjector"]

InjectionSpec = Union[InputSignalFlip, ModuleInputFlip, PeriodicMemoryFlip]


@dataclass(frozen=True)
class InjectionEvent:
    """One applied bit flip."""

    tick: int
    target: str
    before: Number
    after: Number


class FaultInjector:
    """Applies one injection specification to one simulator run.

    Create a fresh injector per run and attach it *before* calling
    ``simulator.run()``.
    """

    def __init__(self, spec: InjectionSpec):
        self.spec = spec
        self.events: List[InjectionEvent] = []
        self._armed = False
        self._done = False
        self._simulator = None

    # ------------------------------------------------------------------
    # Attachment.
    # ------------------------------------------------------------------
    def attach(self, simulator) -> "FaultInjector":
        """Register this injector's handlers on *simulator*."""
        if self._simulator is not None:
            raise InjectionError("injector is already attached to a run")
        self._simulator = simulator
        spec = self.spec
        if isinstance(spec, InputSignalFlip):
            self._check_input_signal(simulator, spec)
            simulator.add_pre_tick(self._input_flip_pre_tick)
        elif isinstance(spec, ModuleInputFlip):
            self._check_module_input(simulator, spec)
            simulator.add_marshal(self._module_input_marshal)
        elif isinstance(spec, PeriodicMemoryFlip):
            simulator.add_pre_tick(self._memory_pre_tick)
            if spec.location.kind is CellKind.ARG:
                simulator.add_marshal(self._stack_arg_marshal)
            elif spec.location.kind is CellKind.LOCAL:
                simulator.add_local_write(self._stack_local_write)
        else:
            raise InjectionError(
                f"unsupported injection specification {spec!r}"
            )
        return self

    @staticmethod
    def _check_input_signal(simulator, spec: InputSignalFlip) -> None:
        sig = simulator.system.signal(spec.signal)
        if not sig.is_system_input:
            raise InjectionError(
                f"{spec.signal!r} is not a system input signal"
            )
        if spec.bit >= sig.width:
            raise InjectionError(
                f"bit {spec.bit} out of range for {spec.signal!r} "
                f"(width {sig.width})"
            )

    @staticmethod
    def _check_module_input(simulator, spec: ModuleInputFlip) -> None:
        module = simulator.system.module(spec.module)
        if spec.port not in module.inputs:
            raise InjectionError(
                f"module {spec.module!r} has no input port {spec.port!r}"
            )
        signal = simulator.system.signal_of_input(spec.module, spec.port)
        width = simulator.system.signal(signal).width
        if spec.bit >= width:
            raise InjectionError(
                f"bit {spec.bit} out of range for {spec.module}.{spec.port} "
                f"(width {width})"
            )

    # ------------------------------------------------------------------
    # Status.
    # ------------------------------------------------------------------
    @property
    def injected(self) -> bool:
        """Whether at least one flip was actually applied."""
        return bool(self.events)

    @property
    def first_injection_tick(self) -> Optional[int]:
        return self.events[0].tick if self.events else None

    @property
    def ff_quiescent(self) -> bool:
        """Whether this injector can no longer perturb the run: its
        one-shot flip has been applied and nothing is armed.  Periodic
        specs never quiesce, so fast-forward resynchronization (which
        requires a provably undisturbed future) stays disabled for
        them."""
        if isinstance(self.spec, PeriodicMemoryFlip):
            return False
        return self._done and not self._armed

    def _record(self, tick: int, target: str, before: Number, after: Number) -> None:
        self.events.append(InjectionEvent(tick, target, before, after))

    # ------------------------------------------------------------------
    # InputSignalFlip.
    # ------------------------------------------------------------------
    def _input_flip_pre_tick(self, tick: int) -> None:
        spec = self.spec
        if self._done or tick != spec.tick:
            return
        corrupt = getattr(self._simulator, "corrupt_input", None)
        if corrupt is not None:
            # persistent register corruption (see the simulator's
            # corrupt_input docstring)
            before, after = corrupt(spec.signal, spec.bit)
        else:
            store = self._simulator.executor.store
            sig = self._simulator.system.signal(spec.signal)
            before = store[spec.signal]
            after = sig.flip_bit(before, spec.bit)
            store.poke(spec.signal, after)
        self._record(tick, spec.signal, before, after)
        self._done = True

    # ------------------------------------------------------------------
    # ModuleInputFlip.
    # ------------------------------------------------------------------
    def _module_input_marshal(
        self, module: str, args: Dict[str, Number]
    ) -> Dict[str, Number]:
        spec = self.spec
        if self._done or module != spec.module:
            return args
        tick = self._simulator.executor.tick
        if tick < spec.from_tick:
            return args
        signal = self._simulator.system.signal_of_input(module, spec.port)
        sig = self._simulator.system.signal(signal)
        before = args[spec.port]
        after = sig.flip_bit(before, spec.bit)
        args = dict(args)
        args[spec.port] = after
        self._record(tick, f"{module}.{spec.port}", before, after)
        self._done = True
        return args

    # ------------------------------------------------------------------
    # PeriodicMemoryFlip.
    # ------------------------------------------------------------------
    def _period_boundary(self, tick: int) -> bool:
        spec = self.spec
        return (
            tick >= spec.start_tick
            and (tick - spec.start_tick) % spec.period_ticks == 0
        )

    def _memory_pre_tick(self, tick: int) -> None:
        spec = self.spec
        if not self._period_boundary(tick):
            return
        location = spec.location
        if location.kind is CellKind.STATE:
            module = self._simulator.system.module(location.module)
            cell = module.state.spec(location.cell)
            before = module.state.peek(location.cell)
            after = flip_bit(
                before,
                location.bit_in_cell(spec.bit_in_byte),
                cell.cell_type,
                cell.width,
            )
            module.state.poke(location.cell, after)
            self._record(tick, location.label, before, after)
        elif location.kind is CellKind.SIGNAL:
            store = self._simulator.executor.store
            sig = self._simulator.system.signal(location.cell)
            before = store[location.cell]
            after = sig.flip_bit(
                before, location.bit_in_cell(spec.bit_in_byte)
            )
            store.poke(location.cell, after)
            self._record(tick, location.label, before, after)
        else:
            # stack location: arm the corruption for the next use
            self._armed = True

    def _stack_arg_marshal(
        self, module: str, args: Dict[str, Number]
    ) -> Dict[str, Number]:
        spec = self.spec
        location = spec.location
        if not self._armed or module != location.module:
            return args
        signal = self._simulator.system.signal_of_input(module, location.cell)
        sig = self._simulator.system.signal(signal)
        before = args[location.cell]
        after = sig.flip_bit(before, location.bit_in_cell(spec.bit_in_byte))
        args = dict(args)
        args[location.cell] = after
        self._record(
            self._simulator.executor.tick, location.label, before, after
        )
        self._armed = False
        return args

    def _stack_local_write(
        self, module: str, name: str, value: Number
    ) -> Number:
        spec = self.spec
        location = spec.location
        if (
            not self._armed
            or module != location.module
            or name != location.cell
        ):
            return value
        local_spec = next(
            cell
            for cell in self._simulator.system.module(module).local_specs
            if cell.name == name
        )
        after = flip_bit(
            value,
            location.bit_in_cell(spec.bit_in_byte),
            local_spec.cell_type,
            local_spec.width,
        )
        self._record(
            self._simulator.executor.tick, location.label, value, after
        )
        self._armed = False
        return after
