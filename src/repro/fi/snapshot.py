"""Snapshot/fast-forward engine for deterministic simulators.

An injected run is bit-identical to the golden run until its injection
tick, so re-simulating that prefix from tick 0 is pure redundancy —
and for one-shot flips whose disturbance dies out, the *suffix* after
the last divergence is redundant too.  This module eliminates both:

* **Checkpoint tracks.**  While (re-)running a test case's golden
  simulation, :class:`CheckpointStore` records a
  :class:`~repro.target.simulation.SimulatorState` every
  ``checkpoint_stride`` ticks (plus the final state and the golden
  traces).  Tracks live in a process-wide, LRU-bounded, single-flight
  cache beside the golden-run cache, and forked pool workers inherit
  them pre-warmed.
* **Prefix fast-forward.**  :meth:`FastForward.launch` builds the
  injected run's simulator already restored to the nearest checkpoint
  at-or-before the injection tick; only the remaining ticks are
  simulated.  Restoration covers the full closed loop — signal store,
  module locals, plant, sensor registers, classifier accumulators,
  loop bookkeeping — so the result is bit-identical to a
  full-from-tick-0 run.
* **Golden resynchronization.**  For a quiescent one-shot injector
  (flip applied, nothing armed), a top-of-tick probe compares the
  simulator state against the golden checkpoint at each stride
  boundary.  On an exact match the run's future is provably identical
  to the golden run's (the simulators are deterministic functions of
  their state), so the probe restores the golden *final* state,
  fast-forwards the monitor bank, and stops the run — skipping the
  entire remaining suffix.  Persistently corrupted state (disturbed
  counter registers) never matches, and such runs simply simulate to
  the end.

* **Shared-memory track pool.**  A checkpoint track is a pile of
  nested python dicts; forked workers inherit it through copy-on-write
  and then dirty the pages just by touching refcounts.
  :class:`TrackPool` flattens each golden track **once, pre-fork** into
  two flat numpy columns (one ``int64``, one ``float64``) plus a tiny
  path schema, publishes the columns through
  :class:`~repro.fi.shm.ShmArrayPack`, and rebuilds checkpoint states
  row-by-row out of the shared segments at restore time.  Leaves that
  are not plain ints/floats/bools (``None`` markers, failure-kind
  tuples, classifier accumulators) ride a small per-row side channel.
  The rebuild round-trips every leaf exactly — pooled restores are
  bit-identical to dict restores — and any track whose shape resists
  flattening simply stays on the dict path.

Both mechanisms preserve results bit-for-bit; they only trade redundant
simulation for snapshot comparisons.  ``ff_stats`` counts restores,
resynchronizations and skipped ticks; the campaign executor folds the
per-task deltas into :class:`~repro.fi.executor.CampaignTelemetry`.
"""

from __future__ import annotations

import copy
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.edm.monitors import MonitorBank
from repro.errors import CampaignError
from repro.fi.shm import ShmArrayPack, shm_available
from repro.target.simulation import SignalTraces, SimulatorState

__all__ = [
    "DEFAULT_CHECKPOINT_STRIDE",
    "CheckpointTrack",
    "CheckpointStore",
    "FastForward",
    "FastForwardStats",
    "PooledTrack",
    "TrackPool",
    "checkpoint_cache",
    "ff_stats",
]

#: environment kill-switch for the shared-memory checkpoint pool
#: (mirrors the ``track_pool`` policy flag; either disables it).
_NO_TRACK_POOL_ENV = "REPRO_NO_TRACK_POOL"

#: default distance between golden checkpoints, in ticks.  Denser
#: strides shorten the simulated remainder per injected run (less
#: wasted prefix below the injection tick, earlier resynchronization
#: exits) but grow the per-case track (one full closed-loop snapshot
#: per checkpoint) and the number of resynchronization probes.
DEFAULT_CHECKPOINT_STRIDE = 64


# ======================================================================
# Statistics.
# ======================================================================
class FastForwardStats:
    """Process-local fast-forward counters.

    Kept module-global (not per-campaign) so forked pool workers can
    account their savings into a plain object; the executor snapshots
    the counters around each task and ships the delta home with the
    task result.
    """

    __slots__ = ("restores", "resyncs", "ticks_skipped", "tracks_recorded")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.restores = 0
        self.resyncs = 0
        self.ticks_skipped = 0
        self.tracks_recorded = 0

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (
            self.restores,
            self.resyncs,
            self.ticks_skipped,
            self.tracks_recorded,
        )


#: the process-wide counters used by all fast-forward machinery.
ff_stats = FastForwardStats()


# ======================================================================
# Checkpoint tracks.
# ======================================================================
@dataclass
class CheckpointTrack:
    """Everything recorded along one test case's golden run.

    ``states`` maps checkpoint tick (multiples of ``stride``) to the
    full simulator state at the top of that tick; ``final_state`` is
    the state right after the golden run's last tick.  When the track
    was recorded with a monitor bank attached, ``bank_states`` and
    ``bank_final`` carry the bank's per-checkpoint/final snapshots so
    fast-forwarded runs restore consistent EA reference values.
    """

    stride: int
    states: Dict[int, SimulatorState]
    final_state: SimulatorState
    traces: SignalTraces
    end_ticks: int
    bank_states: Optional[Dict[int, Dict[str, tuple]]] = None
    bank_final: Optional[Dict[str, tuple]] = None

    def nearest(self, tick: int) -> SimulatorState:
        """The checkpoint at-or-before *tick* (tick 0 always exists)."""
        checkpoint = (tick // self.stride) * self.stride
        while checkpoint > 0 and checkpoint not in self.states:
            checkpoint -= self.stride
        return self.states[checkpoint]


def record_track(
    factory,
    test_case,
    stride: int,
    bank_specs: Optional[Sequence] = None,
) -> CheckpointTrack:
    """Run one golden simulation, capturing checkpoints every *stride*
    ticks.  A monitor bank built from *bank_specs* rides along (it only
    observes the store, never perturbs the run), so campaigns that
    carry a bank get matching bank snapshots.

    The track run records no signal traces: injected runs restore with
    ``restore_traces=False`` (they never record traces themselves), so
    trace recording here would only slow the recording run down.
    ``track.traces`` is therefore empty; callers that need prefix
    splicing capture their own states from a trace-recording simulator.
    """
    if stride < 1:
        raise CampaignError(f"checkpoint stride must be >= 1, got {stride}")
    simulator = factory(test_case)
    simulator.record_traces = False
    bank = (
        MonitorBank(list(bank_specs)).attach(simulator)
        if bank_specs is not None
        else None
    )
    states: Dict[int, SimulatorState] = {}
    bank_states: Optional[Dict[int, Dict[str, tuple]]] = (
        {} if bank is not None else None
    )

    def probe(tick: int) -> bool:
        if tick % stride == 0:
            states[tick] = simulator.capture_state()
            if bank is not None:
                bank_states[tick] = bank.snapshot()
        return False

    simulator.set_tick_probe(probe)
    result = simulator.run()
    simulator.set_tick_probe(None)
    ff_stats.tracks_recorded += 1
    return CheckpointTrack(
        stride=stride,
        states=states,
        final_state=simulator.capture_state(),
        traces=simulator.traces,
        end_ticks=result.ticks_run,
        bank_states=bank_states,
        bank_final=bank.snapshot() if bank is not None else None,
    )


# ======================================================================
# The process-wide track cache.
# ======================================================================
class CheckpointStore:
    """Process-wide checkpoint-track cache with single-flight
    computation, mirroring :class:`~repro.fi.executor.GoldenRunCache`.

    Keyed by (target, factory, case id, stride, bank signature): two
    factories — or two assertion banks — never alias.  The store holds
    a strong reference to each factory while any of its tracks are
    cached.  Bounded LRU: tracks are an order of magnitude heavier than
    golden runs (dozens of full-state snapshots each), so the default
    bound is smaller.
    """

    def __init__(self, max_tracks: int = 128) -> None:
        if max_tracks < 1:
            raise CampaignError(f"max_tracks must be >= 1, got {max_tracks}")
        self.max_tracks = max_tracks
        self._tracks: "OrderedDict[Tuple, CheckpointTrack]" = OrderedDict()
        self._flight: Dict[Tuple, threading.Lock] = {}
        self._factories: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._tracks)

    @staticmethod
    def _bank_key(bank_specs: Optional[Sequence]) -> Optional[Tuple]:
        # dataclass reprs capture every spec parameter — banks with
        # equal names but different thresholds never alias
        if bank_specs is None:
            return None
        return tuple(repr(spec) for spec in bank_specs)

    def get(
        self,
        target: str,
        factory,
        test_case,
        stride: int,
        bank_specs: Optional[Sequence] = None,
    ) -> CheckpointTrack:
        key = (
            target,
            id(factory),
            test_case.case_id,
            stride,
            self._bank_key(bank_specs),
        )
        with self._lock:
            track = self._tracks.get(key)
            if track is not None:
                self._tracks.move_to_end(key)
                self.hits += 1
                return track
            flight = self._flight.setdefault(key, threading.Lock())
        with flight:
            with self._lock:
                track = self._tracks.get(key)
                if track is not None:
                    self._tracks.move_to_end(key)
                    self._flight.pop(key, None)
                    self.hits += 1
                    return track
                self._factories[id(factory)] = factory
            track = record_track(factory, test_case, stride, bank_specs)
            with self._lock:
                self._tracks[key] = track
                self.misses += 1
                self._flight.pop(key, None)
                self._evict_locked()
            return track

    def _evict_locked(self) -> None:
        while len(self._tracks) > self.max_tracks:
            (_, factory_id, _, _, _), _ = self._tracks.popitem(last=False)
            if not any(k[1] == factory_id for k in self._tracks):
                self._factories.pop(factory_id, None)

    def clear(self) -> None:
        with self._lock:
            self._tracks.clear()
            self._flight.clear()
            self._factories.clear()
            self.hits = 0
            self.misses = 0

    def resize(self, max_tracks: int) -> None:
        """Re-bound the cache (long-running daemons tune memory);
        shrinking evicts least-recently-used tracks immediately."""
        if max_tracks < 1:
            raise CampaignError(
                f"max_tracks must be >= 1, got {max_tracks}"
            )
        with self._lock:
            self.max_tracks = max_tracks
            self._evict_locked()


#: the default process-wide track cache used by all campaign drivers.
checkpoint_cache = CheckpointStore()


# ======================================================================
# The shared-memory track pool.
# ======================================================================
try:  # numpy backs the flattened columns; pooling is gated on it
    import numpy as _np
except Exception:  # pragma: no cover - numpy is part of the toolchain
    _np = None

#: restorable SimulatorState sections, walked in this fixed order so
#: every state of a track flattens to the same leaf sequence.
_STATE_SECTIONS = (
    "tick", "signals", "modules", "plant", "sensors", "classifier", "loop",
)


def _state_leaves(state: SimulatorState) -> List[Tuple[Tuple, Any]]:
    """Deterministic ``(path, value)`` flattening of the restorable
    fields of *state* (traces are never restored by fast-forward, so
    trace bookkeeping is excluded).  Dicts recurse in sorted-key order;
    everything else — plain scalars and opaque blobs alike — is a leaf.
    """
    leaves: List[Tuple[Tuple, Any]] = []

    def walk(path: Tuple, value: Any) -> None:
        if isinstance(value, dict) and value:
            try:
                keys = sorted(value)
            except TypeError:
                leaves.append((path, value))
                return
            for key in keys:
                walk(path + (key,), value[key])
        else:
            leaves.append((path, value))

    for section in _STATE_SECTIONS:
        walk((section,), getattr(state, section))
    return leaves


class _PooledStates:
    """Mapping facade over a pooled track's checkpoint rows, so the
    resynchronization watcher can keep saying ``track.states.get(t)``."""

    __slots__ = ("_track",)

    def __init__(self, track: "PooledTrack"):
        self._track = track

    def get(self, tick: int) -> Optional[SimulatorState]:
        return self._track.state_at_tick(tick)

    def __getitem__(self, tick: int) -> SimulatorState:
        state = self._track.state_at_tick(tick)
        if state is None:
            raise KeyError(tick)
        return state

    def __contains__(self, tick: int) -> bool:
        return tick in self._track.checkpoint_ticks


class PooledTrack:
    """Read side of one pooled golden track.

    Duck-types the slice of :class:`CheckpointTrack` that
    :meth:`FastForward.launch` and the resynchronization watcher
    consume (``nearest``/``states``/``final_state``/``stride``/
    ``end_ticks``/``bank_states``/``bank_final``), but materializes
    each :class:`SimulatorState` on demand out of the shared columns
    instead of holding a dict per checkpoint.  Rebuilt leaves
    round-trip exactly (``int64``/``float64`` are lossless for the
    quantized simulator domain), so a pooled restore is bit-identical
    to a dict restore.
    """

    __slots__ = (
        "stride", "end_ticks", "bank_states", "bank_final",
        "checkpoint_ticks", "states",
        "_pack", "_int_key", "_float_key", "_schema", "_opaque",
    )

    def __init__(
        self,
        pack: ShmArrayPack,
        int_key: Optional[str],
        float_key: Optional[str],
        schema: Tuple[Tuple[Tuple, str, int], ...],
        opaque: Tuple[Tuple, ...],
        checkpoint_ticks: Tuple[int, ...],
        stride: int,
        end_ticks: int,
        bank_states: Optional[Dict[int, Dict[str, tuple]]],
        bank_final: Optional[Dict[str, tuple]],
    ):
        self._pack = pack
        self._int_key = int_key
        self._float_key = float_key
        self._schema = schema
        self._opaque = opaque
        self.checkpoint_ticks = checkpoint_ticks
        self.stride = stride
        self.end_ticks = end_ticks
        self.bank_states = bank_states
        self.bank_final = bank_final
        self.states = _PooledStates(self)

    # -- row rebuild ----------------------------------------------------
    def _state_at_row(self, row: int) -> SimulatorState:
        ints = (
            self._pack.get(self._int_key)
            if self._int_key is not None else None
        )
        floats = (
            self._pack.get(self._float_key)
            if self._float_key is not None else None
        )
        if (self._int_key is not None and ints is None) or (
            self._float_key is not None and floats is None
        ):  # pragma: no cover - attach failure; publisher keeps a local
            raise CampaignError("pooled track columns are unavailable")
        root: Dict[str, Any] = {}
        for path, kind, column in self._schema:
            if kind == "i":
                value: Any = int(ints[row, column])
            elif kind == "b":
                value = bool(ints[row, column])
            elif kind == "f":
                value = float(floats[row, column])
            else:
                # opaque blobs may be mutated by restorers downstream;
                # hand every rebuild its own copy
                value = copy.deepcopy(self._opaque[row][column])
            node = root
            for part in path[:-1]:
                child = node.get(part)
                if child is None:
                    child = node[part] = {}
                node = child
            node[path[-1]] = value
        return SimulatorState(
            tick=root["tick"],
            signals=root.get("signals") or {},
            modules=root.get("modules") or {},
            plant=root.get("plant") or {},
            sensors=root.get("sensors") or {},
            classifier=root.get("classifier"),
            loop=root.get("loop") or {},
            trace_lengths={},
            traces=None,
        )

    # -- CheckpointTrack-compatible surface -----------------------------
    def state_at_tick(self, tick: int) -> Optional[SimulatorState]:
        """The checkpoint state captured at exactly *tick* (``None``
        when no checkpoint landed there).  The final row is addressed
        through :attr:`final_state` only, never by tick."""
        try:
            row = self.checkpoint_ticks.index(tick)
        except ValueError:
            return None
        return self._state_at_row(row)

    @property
    def final_state(self) -> SimulatorState:
        return self._state_at_row(len(self.checkpoint_ticks))

    def nearest(self, tick: int) -> SimulatorState:
        """The checkpoint at-or-before *tick* (tick 0 always exists)."""
        row = 0
        for index, checkpoint in enumerate(self.checkpoint_ticks):
            if checkpoint > tick:
                break
            row = index
        return self._state_at_row(row)


class TrackPool:
    """Write-once pool of flattened golden tracks.

    The campaign owner publishes tracks pre-fork (:meth:`publish`);
    workers — and the owner itself — read checkpoint rows back through
    :meth:`get`.  A track whose states do not share one leaf shape, or
    whose numeric leaves overflow the flat columns, is simply not
    pooled: callers fall back to the inherited dict track and stay
    bit-identical either way.
    """

    def __init__(self, pack: Optional[ShmArrayPack] = None):
        self._pack = pack if pack is not None else ShmArrayPack()
        self._tracks: Dict[Any, PooledTrack] = {}
        self._sequence = 0

    @property
    def is_owner(self) -> bool:
        return self._pack.is_owner

    def __len__(self) -> int:
        return len(self._tracks)

    def get(self, case_id: Any) -> Optional[PooledTrack]:
        return self._tracks.get(case_id)

    def close(self) -> None:
        self._tracks.clear()
        self._pack.close()

    def publish(self, case_id: Any, track: CheckpointTrack) -> bool:
        """Flatten *track* into shared columns under *case_id*.
        Returns ``False`` (leaving the pool unchanged) for tracks the
        flat layout cannot represent exactly."""
        if case_id in self._tracks:
            return True
        if _np is None:
            return False
        ticks = tuple(sorted(track.states))
        states = [track.states[t] for t in ticks] + [track.final_state]
        rows = [_state_leaves(state) for state in states]
        shape = [path for path, _ in rows[0]]
        if any([path for path, _ in row] != shape for row in rows[1:]):
            return False

        schema: List[Tuple[Tuple, str, int]] = []
        int_columns: List[List[Any]] = []
        float_columns: List[List[Any]] = []
        opaque_columns: List[List[Any]] = []
        for column, path in enumerate(shape):
            values = [row[column][1] for row in rows]
            if all(type(v) is bool for v in values):
                kind, store = "b", int_columns
            elif all(type(v) is int for v in values):
                kind, store = "i", int_columns
            elif all(type(v) is float for v in values):
                kind, store = "f", float_columns
            else:
                kind, store = "o", opaque_columns
            schema.append((path, kind, len(store)))
            store.append(values)

        ints = floats = None
        try:
            if int_columns:
                ints = _np.array(int_columns, dtype=_np.int64).T
                if ints.T.tolist() != [
                    [int(v) for v in column] for column in int_columns
                ]:
                    return False  # a leaf does not round-trip int64
                ints = _np.ascontiguousarray(ints)
            if float_columns:
                floats = _np.array(float_columns, dtype=_np.float64).T
                if floats.T.tolist() != float_columns:
                    return False  # NaN or non-roundtripping leaf
                floats = _np.ascontiguousarray(floats)
        except (OverflowError, TypeError, ValueError):
            return False
        prefix, self._sequence = f"ckpt{self._sequence}", self._sequence + 1
        int_key = float_key = None
        if ints is not None:
            int_key = f"{prefix}:i"
            self._pack.publish(int_key, ints)
        if floats is not None:
            float_key = f"{prefix}:f"
            self._pack.publish(float_key, floats)
        opaque = tuple(
            tuple(column[row] for column in opaque_columns)
            for row in range(len(rows))
        )
        self._tracks[case_id] = PooledTrack(
            pack=self._pack,
            int_key=int_key,
            float_key=float_key,
            schema=tuple(schema),
            opaque=opaque,
            checkpoint_ticks=ticks,
            stride=track.stride,
            end_ticks=track.end_ticks,
            bank_states=track.bank_states,
            bank_final=track.bank_final,
        )
        return True


# ======================================================================
# The per-campaign coordinator.
# ======================================================================
#: full-capture comparison failures tolerated before a run's resync
#: probe uninstalls itself.  A reconverging transient matches within
#: the first boundary or two after it dies out; state that is still
#: diverged after this many full comparisons is effectively persistent
#: (a disturbed counter register), and further probing is pure cost.
_RESYNC_GIVE_UP = 8


class _ResyncWatcher:
    """Top-of-tick probe that exits an injected run early once its
    state provably reconverged with the golden run."""

    __slots__ = ("simulator", "bank", "injector", "track", "attempts")

    def __init__(self, simulator, bank, injector, track: CheckpointTrack):
        self.simulator = simulator
        self.bank = bank
        self.injector = injector
        self.track = track
        self.attempts = 0

    def probe(self, tick: int) -> bool:
        track = self.track
        if tick % track.stride or tick == 0:
            return False
        if not self.injector.ff_quiescent:
            return False
        golden = track.states.get(tick)
        if golden is None:
            return False
        # cheap gate first: a persistently corrupted sensor register
        # (the common non-reconverging case) fails this small dict
        # comparison, sparing the full closed-loop capture below
        if self.simulator.sensors.snapshot() != golden.sensors:
            return False
        if not self.simulator.capture_state().matches(golden):
            self.attempts += 1
            if self.attempts >= _RESYNC_GIVE_UP:
                # diverged-but-sensor-identical state this persistent
                # will not reconverge; stop probing (the run simply
                # simulates to its end, still bit-identical)
                self.simulator.set_tick_probe(None)
            return False
        bank = self.bank
        if bank is not None:
            at = track.bank_states[tick]
            final = track.bank_final
            if not bank.resyncable_with(at, final):
                return False
            bank.fast_forward_to(at, final)
        # deterministic simulator + identical state + quiescent injector
        # => the remaining trajectory is the golden run's, verbatim
        self.simulator.restore_state(track.final_state, restore_traces=False)
        ff_stats.resyncs += 1
        ff_stats.ticks_skipped += max(0, track.end_ticks - tick)
        return True


def _noop_arm(injector) -> None:
    return None


#: restores seen by this process, for the targeted chaos hook below.
_restore_count = 0


def _chaos_corrupt_restore(simulator) -> None:
    """Test-only silent-corruption hook for the integrity layer.

    ``REPRO_CHAOS_CORRUPT_FF_RESTORE=all`` perturbs the signal store
    after *every* checkpoint restore; ``=N`` perturbs only the Nth
    restore of this process (0-based).  The perturbation — a +1 bump
    of every store cell — models a stale or bit-rotted snapshot: the
    restored run silently diverges from a true full replay, which is
    exactly the failure mode the sampled audit replay must catch.
    Full replays (fast-forward off) never restore, so they stay clean
    and remain the trusted reference.
    """
    global _restore_count
    value = os.environ.get("REPRO_CHAOS_CORRUPT_FF_RESTORE")
    if not value:
        return
    nth = _restore_count
    _restore_count += 1
    if value != "all":
        try:
            if nth != int(value):
                return
        except ValueError:
            return
    store = simulator.executor.store
    for signal, current in sorted(store.snapshot().items()):
        store.poke(signal, current + 1)


class FastForward:
    """One campaign's handle on the fast-forward machinery.

    ``launch(test_case, from_tick)`` replaces the campaign's
    ``factory(test_case)`` call for an injected run: it returns a
    simulator already restored to the nearest golden checkpoint
    at-or-before *from_tick* (traces off, as in all injected runs), a
    monitor bank consistent with that state when the campaign carries
    one, and an ``arm(injector)`` callable that installs the
    resynchronization probe once the run's injector exists.

    ``resync=False`` (periodic error models, which never quiesce)
    limits the engine to prefix skipping; runs whose injection tick
    precedes the first non-trivial checkpoint bypass the engine
    entirely, so campaigns stay bit-identical — and overhead-free —
    where fast-forwarding cannot help.
    """

    def __init__(
        self,
        factory,
        target: str,
        config=None,
        bank_specs: Optional[Sequence] = None,
        resync: bool = True,
        store: Optional[CheckpointStore] = None,
    ):
        self.factory = factory
        self.target = target
        self.bank_specs = list(bank_specs) if bank_specs is not None else None
        self.resync = resync
        self.store = store if store is not None else checkpoint_cache
        stride = getattr(config, "checkpoint_stride", None)
        self.stride = stride if stride else DEFAULT_CHECKPOINT_STRIDE
        self.enabled = bool(getattr(config, "fast_forward", True))
        self.track_pool_enabled = (
            self.enabled
            and bool(getattr(config, "track_pool", True))
            and not os.environ.get(_NO_TRACK_POOL_ENV)
            and shm_available()
        )
        self._pool: Optional[TrackPool] = (
            TrackPool() if self.track_pool_enabled else None
        )

    @property
    def pooled_tracks(self) -> int:
        """How many golden tracks live in the shared-memory pool."""
        return len(self._pool) if self._pool is not None else 0

    def wants_track(self, from_tick: int) -> bool:
        """Whether an injection at *from_tick* benefits from a track
        (a non-trivial prefix to skip, or a suffix to resync away)."""
        return self.enabled and (self.resync or from_tick >= self.stride)

    def preload(self, test_cases: Sequence) -> None:
        """Record the tracks for *test_cases* up front (pre-fork, so
        pool workers inherit them through copy-on-write)."""
        if not self.enabled:
            return
        for test_case in test_cases:
            track = self.store.get(
                self.target, self.factory, test_case,
                self.stride, self.bank_specs,
            )
            if self._pool is not None and self._pool.is_owner:
                self._pool.publish(test_case.case_id, track)

    def launch(
        self, test_case, from_tick: int
    ) -> Tuple[Any, Optional[MonitorBank], Callable[[Any], None]]:
        """Build the simulator (and bank) for one injected run."""
        if not self.wants_track(from_tick):
            simulator = self.factory(test_case)
            simulator.record_traces = False
            return simulator, self._fresh_bank(simulator), _noop_arm
        # prefer the pre-fork shared-memory flattening of the track;
        # unpublished cases fall back to the inherited dict track
        track = (
            self._pool.get(test_case.case_id)
            if self._pool is not None else None
        )
        if track is None:
            track = self.store.get(
                self.target, self.factory, test_case,
                self.stride, self.bank_specs,
            )
        checkpoint = track.nearest(from_tick)
        simulator = self.factory(test_case)
        simulator.record_traces = False
        if checkpoint.tick:
            simulator.restore_state(checkpoint, restore_traces=False)
            _chaos_corrupt_restore(simulator)
            ff_stats.restores += 1
            ff_stats.ticks_skipped += checkpoint.tick
        bank = self._fresh_bank(simulator)
        if bank is not None and checkpoint.tick:
            bank.restore(track.bank_states[checkpoint.tick])
        if not self.resync:
            return simulator, bank, _noop_arm

        def arm(injector) -> None:
            watcher = _ResyncWatcher(simulator, bank, injector, track)
            simulator.set_tick_probe(watcher.probe)

        return simulator, bank, arm

    def _fresh_bank(self, simulator) -> Optional[MonitorBank]:
        if self.bank_specs is None:
            return None
        return MonitorBank(list(self.bank_specs)).attach(simulator)
