"""Shared-memory publication of read-only campaign arrays.

The vectorized batch core (:mod:`repro.fi.vector`) compares recorded
invocation streams against the golden run's streams.  Those golden
arrays are identical for every run of a test case, so the campaign
packs them **once, before the process pool forks**, into
``multiprocessing.shared_memory`` segments; workers attach to the
segments by name instead of materializing their own copy (and, on
platforms without working shared memory, fall back transparently to
the plain in-process arrays inherited through fork copy-on-write).

:class:`ShmArrayPack` is a tiny write-once key/array store:

* ``publish(key, array)`` in the parent copies the array into a shared
  segment (or keeps it in-process when shared memory is unavailable);
* ``get(key)`` anywhere returns a read-only numpy view of the data;
* ``close()`` detaches, and additionally unlinks the segments in the
  creating process only — workers never destroy the parent's data.
"""

from __future__ import annotations

import os
import weakref
from typing import Dict, Optional, Tuple

try:  # numpy is required for packing; the caller gates on this too
    import numpy as _np
except Exception:  # pragma: no cover - numpy is part of the toolchain
    _np = None

try:
    from multiprocessing import shared_memory as _shm
except Exception:  # pragma: no cover - stdlib module missing
    _shm = None

__all__ = ["ShmArrayPack", "release_all", "shm_available"]

#: every live pack, for :func:`release_all` (weak: the registry must
#: not keep packs alive past their last strong reference).
_LIVE_PACKS: "weakref.WeakSet[ShmArrayPack]" = weakref.WeakSet()


def release_all() -> None:
    """Close every live pack this process owns or is attached to.

    Interpreter-exit finalizers do not run in ``multiprocessing``
    children (their bootstrap leaves via ``os._exit``), so a process
    that runs campaigns as a forked child — the campaign service's
    job children — must call this before exiting, or its shared
    segments outlive it as ``/dev/shm`` orphans.
    """
    for pack in list(_LIVE_PACKS):
        pack.close()


def _release_segments(handles: Dict[str, object], owner_pid: int) -> None:
    """Detach (and, in the owning process, unlink) *handles*.

    Module-level so a :func:`weakref.finalize` can hold it without
    keeping the pack itself alive: segments are released when the pack
    is garbage-collected, when :meth:`ShmArrayPack.close` runs, or —
    crucially for campaigns that die mid-run — at interpreter exit,
    whichever comes first.  Never leaves orphans in ``/dev/shm``.
    """
    owner = os.getpid() == owner_pid
    for handle in list(handles.values()):
        try:
            handle.close()
        except Exception:
            pass
        if owner:
            try:
                handle.unlink()
            except Exception:
                pass
    handles.clear()


def shm_available() -> bool:
    """Whether shared-memory publication can be attempted at all."""
    return _np is not None and _shm is not None


class ShmArrayPack:
    """Write-once store of named, read-only numpy arrays.

    Arrays published in the parent process live in shared-memory
    segments; a forked worker inherits the segment *names* and lazily
    re-attaches on first :meth:`get`.  Any failure to create or attach
    a segment degrades to keeping the plain array in-process — the
    consumer sees identical data either way.
    """

    def __init__(self) -> None:
        #: key -> (segment name, shape, dtype str) for shared arrays.
        self._segments: Dict[str, Tuple[str, tuple, str]] = {}
        #: key -> plain array (fallback, or the parent's own reference).
        self._local: Dict[str, "_np.ndarray"] = {}
        #: attached SharedMemory handles (kept alive for the views).
        self._handles: Dict[str, object] = {}
        self._owner_pid = os.getpid()
        self._closed = False
        # a finalizer, not atexit.register(self.close): no strong
        # reference pinning the pack for the process lifetime, and the
        # segments are released on garbage collection AND interpreter
        # exit (finalize hooks run atexit for still-alive objects)
        self._finalizer = weakref.finalize(
            self, _release_segments, self._handles, self._owner_pid
        )
        _LIVE_PACKS.add(self)

    @property
    def is_owner(self) -> bool:
        return os.getpid() == self._owner_pid

    def publish(self, key: str, array) -> None:
        """Publish one array under *key* (parent process only)."""
        if _np is None:
            raise RuntimeError("numpy is required to publish arrays")
        if key in self._local or key in self._segments:
            raise KeyError(f"array {key!r} already published")
        array = _np.ascontiguousarray(array)
        self._local[key] = array
        if _shm is None or array.nbytes == 0:
            return
        try:
            segment = _shm.SharedMemory(create=True, size=array.nbytes)
            view = _np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            view[...] = array
            self._handles[key] = segment
            self._segments[key] = (
                segment.name, array.shape, array.dtype.str
            )
            # the shared segment becomes the authoritative storage:
            # the parent reads through it too, and forked workers
            # inherit the mapping (one physical copy for everyone)
            self._local[key] = view
        except Exception:
            # no usable /dev/shm (or segment creation raced a limit):
            # the plain array stays authoritative
            self._segments.pop(key, None)
            self._handles.pop(key, None)

    def get(self, key: str) -> Optional["_np.ndarray"]:
        """A read-only view of the array published under *key*.

        In the parent this is the published array itself; in a forked
        worker the shared segment is attached on first use.  Returns
        ``None`` for unknown keys.
        """
        cached = self._local.get(key)
        if cached is not None:
            view = cached.view()
            view.flags.writeable = False
            return view
        meta = self._segments.get(key)
        if meta is None:
            return None
        name, shape, dtype = meta
        try:
            segment = _shm.SharedMemory(name=name)
            view = _np.ndarray(shape, dtype=_np.dtype(dtype),
                               buffer=segment.buf)
            view.flags.writeable = False
            self._handles[key] = segment
            self._local[key] = view
            return view
        except Exception:
            return None

    def __contains__(self, key: str) -> bool:
        return key in self._local or key in self._segments

    def keys(self):
        return list(dict.fromkeys(list(self._local) + list(self._segments)))

    def close(self) -> None:
        """Detach all segments; unlink them in the owning process."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()
        self._local.clear()
        self._segments.clear()
