"""Persistence of campaign results.

Fault-injection campaigns are the expensive part of the workflow; the
analyses downstream of them are cheap.  This module serializes the
three campaign result types to plain JSON-compatible dictionaries (and
files) so that a campaign run once — possibly on another machine —
can feed any number of later analyses.

The format is versioned; loading rejects unknown versions rather than
guessing.  Every saved envelope carries a canonical content digest
(:func:`~repro.fi.integrity.canonical_digest`); :func:`load_json`
re-verifies it and raises :class:`~repro.errors.IntegrityError` on a
mismatch, so a campaign file corrupted at rest (bit rot, truncated
copy, hand edit) is detected instead of silently feeding wrong numbers
into the analyses.  Files written before digests existed load
unverified.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import CampaignError, IntegrityError
from repro.fi.adaptive import StratumReport
from repro.fi.integrity import canonical_digest
from repro.fi.campaign import (
    DetectionResult,
    MemoryCampaignResult,
    MemoryRunRecord,
    PermeabilityEstimate,
)
from repro.fi.memory import Region

__all__ = [
    "FORMAT_VERSION",
    "permeability_to_dict",
    "permeability_from_dict",
    "detection_to_dict",
    "detection_from_dict",
    "memory_to_dict",
    "memory_from_dict",
    "stratum_reports_to_dict",
    "stratum_reports_from_dict",
    "result_to_document",
    "document_to_result",
    "save_json",
    "load_json",
]

FORMAT_VERSION = 1

_KIND_PERMEABILITY = "permeability_estimate"
_KIND_DETECTION = "detection_result"
_KIND_MEMORY = "memory_campaign_result"


def _envelope(kind: str, payload: dict) -> dict:
    return {"format_version": FORMAT_VERSION, "kind": kind, **payload}


def _check(data: dict, kind: str) -> None:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise CampaignError(
            f"unsupported campaign-file format version {version!r} "
            f"(supported: {FORMAT_VERSION})"
        )
    if data.get("kind") != kind:
        raise CampaignError(
            f"campaign file holds a {data.get('kind')!r}, expected {kind!r}"
        )


# ----------------------------------------------------------------------
# PermeabilityEstimate.
# ----------------------------------------------------------------------
def permeability_to_dict(estimate: PermeabilityEstimate) -> dict:
    return _envelope(
        _KIND_PERMEABILITY,
        {
            "direct_counts": [
                {"module": m, "in_port": i, "out_port": k, "count": c}
                for (m, i, k), c in estimate.direct_counts.items()
            ],
            "active_runs": [
                {"module": m, "in_port": i, "runs": n}
                for (m, i), n in estimate.active_runs.items()
            ],
        },
    )


def permeability_from_dict(data: dict) -> PermeabilityEstimate:
    _check(data, _KIND_PERMEABILITY)
    direct = {
        (row["module"], row["in_port"], row["out_port"]): row["count"]
        for row in data["direct_counts"]
    }
    active = {
        (row["module"], row["in_port"]): row["runs"]
        for row in data["active_runs"]
    }
    values = {
        (m, i, k): (direct[(m, i, k)] / active[(m, i)] if active[(m, i)] else 0.0)
        for (m, i, k) in direct
    }
    return PermeabilityEstimate(
        direct_counts=direct, active_runs=active, values=values
    )


# ----------------------------------------------------------------------
# DetectionResult.
# ----------------------------------------------------------------------
def detection_to_dict(result: DetectionResult) -> dict:
    return _envelope(
        _KIND_DETECTION,
        {
            "targets": result.targets,
            "ea_names": result.ea_names,
            "n_injected": result.n_injected,
            "n_err": result.n_err,
            "detections": [
                {"target": t, "ea": ea, "count": c}
                for (t, ea), c in result.detections.items()
            ],
            "any_detections": result.any_detections,
            "run_records": {
                target: [sorted(fired) for fired in records]
                for target, records in result.run_records.items()
            },
            "run_latencies": result.run_latencies,
        },
    )


def detection_from_dict(data: dict) -> DetectionResult:
    _check(data, _KIND_DETECTION)
    return DetectionResult(
        targets=list(data["targets"]),
        ea_names=list(data["ea_names"]),
        n_injected=dict(data["n_injected"]),
        n_err=dict(data["n_err"]),
        detections={
            (row["target"], row["ea"]): row["count"]
            for row in data["detections"]
        },
        any_detections=dict(data["any_detections"]),
        run_records={
            target: [frozenset(fired) for fired in records]
            for target, records in data["run_records"].items()
        },
        run_latencies={
            target: [dict(per_run) for per_run in records]
            for target, records in data.get("run_latencies", {}).items()
        },
    )


# ----------------------------------------------------------------------
# MemoryCampaignResult.
# ----------------------------------------------------------------------
def memory_to_dict(result: MemoryCampaignResult) -> dict:
    return _envelope(
        _KIND_MEMORY,
        {
            "ea_names": result.ea_names,
            "records": [
                {
                    "region": record.region.value,
                    "location": record.location_label,
                    "fired": sorted(record.fired),
                    "failed": record.failed,
                }
                for record in result.records
            ],
        },
    )


def memory_from_dict(data: dict) -> MemoryCampaignResult:
    _check(data, _KIND_MEMORY)
    return MemoryCampaignResult(
        ea_names=list(data["ea_names"]),
        records=[
            MemoryRunRecord(
                region=Region(row["region"]),
                location_label=row["location"],
                fired=frozenset(row["fired"]),
                failed=row["failed"],
            )
            for row in data["records"]
        ],
    )


# ----------------------------------------------------------------------
# Adaptive stratum reports (spend accounting, not campaign results).
# ----------------------------------------------------------------------
def stratum_reports_to_dict(reports: List[StratumReport]) -> dict:
    """JSON-encodable summary of an adaptive campaign's spend.

    Not a campaign-result kind (no :func:`save_json` envelope): the
    reports describe how the budget was spent, not what was measured,
    and ride along inside benchmark/telemetry artefacts.
    """
    return {
        "strata": [report.to_json() for report in reports],
        "budget": sum(report.budget for report in reports),
        "spent": sum(report.spent for report in reports),
        "saved": sum(report.saved for report in reports),
    }


def stratum_reports_from_dict(data: dict) -> List[StratumReport]:
    return [
        StratumReport(
            label=row["label"],
            budget=row["budget"],
            spent=row["spent"],
            stop_reason=row["stop_reason"],
            counts={
                name: (pair[0], pair[1])
                for name, pair in row.get("counts", {}).items()
            },
            decisions=dict(row.get("decisions", {})),
        )
        for row in data["strata"]
    ]


# ----------------------------------------------------------------------
# Files.
# ----------------------------------------------------------------------
_TO_DICT = {
    PermeabilityEstimate: permeability_to_dict,
    DetectionResult: detection_to_dict,
    MemoryCampaignResult: memory_to_dict,
}
_FROM_DICT = {
    _KIND_PERMEABILITY: permeability_from_dict,
    _KIND_DETECTION: detection_from_dict,
    _KIND_MEMORY: memory_from_dict,
}

AnyResult = Union[PermeabilityEstimate, DetectionResult, MemoryCampaignResult]


def result_to_document(result: AnyResult) -> dict:
    """The digest-stamped JSON envelope of a campaign result.

    This is the persistence format shared by every
    :class:`~repro.fi.store.ResultStore` backend: the envelope gains
    a ``digest`` field — the canonical content digest of everything
    else in it — which :func:`document_to_result` re-verifies.
    """
    converter = _TO_DICT.get(type(result))
    if converter is None:
        raise CampaignError(
            f"cannot serialize a {type(result).__name__}"
        )
    data = converter(result)
    data["digest"] = canonical_digest(data)
    return data


def document_to_result(data: dict, source: str = "<document>") -> AnyResult:
    """Decode (and digest-verify) a result envelope.

    *source* names the document's origin in error messages.  Raises
    :class:`~repro.errors.IntegrityError` when the content does not
    match its stored digest; envelopes saved before digests existed
    (no ``digest`` field) load unverified.
    """
    data = dict(data)
    stored = data.pop("digest", None)
    if stored is not None:
        computed = canonical_digest(data)
        if computed != stored:
            raise IntegrityError(
                f"campaign file {source} failed verification: stored "
                f"digest {str(stored)[:16]}… does not match content "
                f"digest {computed[:16]}… — the file was modified or "
                f"corrupted after it was saved"
            )
    loader = _FROM_DICT.get(data.get("kind"))
    if loader is None:
        raise CampaignError(
            f"campaign file has unknown kind {data.get('kind')!r}"
        )
    return loader(data)


_shim_warned = False


def _warn_shim_once(name: str, replacement: str) -> None:
    global _shim_warned
    if _shim_warned:
        return
    _shim_warned = True
    warnings.warn(
        f"{name}() is deprecated; use {replacement} "
        f"(repro.fi.store) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def save_json(result: AnyResult, path: Union[str, Path]) -> Path:
    """Deprecated shim over ``ResultStore.save_result``.

    Serializes a campaign result to a JSON file; returns the path.
    Prefer ``JsonCheckpointStore(path).save_result(result)`` (or the
    sqlite store for a queryable results database).
    """
    _warn_shim_once("save_json", "ResultStore.save_result")
    from repro.fi.store import JsonCheckpointStore

    path = Path(path)
    JsonCheckpointStore(str(path)).save_result(result)
    return path


def load_json(path: Union[str, Path]) -> AnyResult:
    """Deprecated shim over ``ResultStore.load_result``.

    Loads any campaign result saved by :func:`save_json`.  Prefer
    ``JsonCheckpointStore(path).load_result()``.
    """
    _warn_shim_once("load_json", "ResultStore.load_result")
    from repro.fi.store import JsonCheckpointStore

    return JsonCheckpointStore(str(Path(path))).load_result()
