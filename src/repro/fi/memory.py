"""Memory map of a simulated system: the fault injector's address space.

The paper's harsher error model (Section 7) injects bit flips into
"intermediate signals and module state (a total of 150 locations in
RAM and 50 locations in the stack)".  We reconstruct that address
space from the system model:

* **RAM area** — per module: its persistent state cells plus the
  backing stores of the signals it produces (an output signal *is* a
  RAM variable of its producer in the shared-memory communication
  model).
* **Stack area** — per module: one cell per input argument (the place
  the dispatcher marshals the input-signal values to) plus one cell
  per declared local temporary.

Locations are *byte-granular*, like the paper's: a 16-bit variable
contributes two injectable locations.  An injection names a location
and a bit within its byte; the injector translates that into a bit
flip of the owning cell.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InjectionError
from repro.model.module import CellSpec, Module
from repro.model.signal import SignalSpec, SignalType
from repro.model.system import SystemModel

__all__ = ["Region", "CellKind", "MemoryLocation", "MemoryMap"]


class Region(enum.Enum):
    """Which memory area a location belongs to."""

    RAM = "ram"
    STACK = "stack"


class CellKind(enum.Enum):
    """What the owning cell is, which decides how to apply a flip."""

    STATE = "state"  #: persistent module state (RAM)
    SIGNAL = "signal"  #: output-signal backing store (RAM)
    ARG = "arg"  #: marshaled input argument (stack)
    LOCAL = "local"  #: declared local temporary (stack)


@dataclass(frozen=True)
class MemoryLocation:
    """One injectable byte location."""

    index: int  #: position in the memory map's location list
    region: Region
    kind: CellKind
    module: str  #: owning module
    cell: str  #: state-cell / signal / port / local name
    byte_offset: int  #: which byte of the cell (0 = least significant)
    cell_width: int  #: total bit width of the owning cell

    @property
    def valid_bits(self) -> int:
        """Number of injectable bits in this byte (1..8)."""
        remaining = self.cell_width - 8 * self.byte_offset
        return max(1, min(8, remaining))

    def bit_in_cell(self, bit_in_byte: int) -> int:
        """Translate a byte-relative bit index to a cell-relative one."""
        if not 0 <= bit_in_byte < self.valid_bits:
            raise InjectionError(
                f"bit {bit_in_byte} out of range for location {self.label} "
                f"({self.valid_bits} valid bits)"
            )
        return 8 * self.byte_offset + bit_in_byte

    def vector_descriptor(self, bit_in_byte: int) -> tuple:
        """The ``(cell kind, module, cell, cell-relative bit)`` tuple
        the vectorized batch planner keys a memory-flip row on.

        Centralized here so the planner and the scalar injector agree
        on how a byte location resolves to an owning cell: the kind
        string decides which kernel flip bucket applies the strike
        (state array, signal store, marshaled argument, or declared
        local), and the bit is translated to cell-relative numbering
        exactly like the scalar :class:`PeriodicMemoryFlip` does.
        """
        return (
            self.kind.value,
            self.module,
            self.cell,
            self.bit_in_cell(bit_in_byte),
        )

    @property
    def label(self) -> str:
        suffix = f"+{self.byte_offset}" if self.byte_offset else ""
        # a module may have a state variable and a produced signal of
        # the same name (CLOCK's mscnt); keep their labels distinct
        kind = ".store" if self.kind is CellKind.SIGNAL else ""
        return f"{self.region.value}:{self.module}.{self.cell}{kind}{suffix}"


def _bytes_of(width: int) -> int:
    return (width + 7) // 8


class MemoryMap:
    """The complete injectable address space of one system."""

    def __init__(self, system: SystemModel):
        self.system = system
        self._locations: List[MemoryLocation] = []
        self._build()

    def _add(self, region: Region, kind: CellKind, module: str,
             cell: str, width: int) -> None:
        for offset in range(_bytes_of(width)):
            self._locations.append(
                MemoryLocation(
                    index=len(self._locations),
                    region=region,
                    kind=kind,
                    module=module,
                    cell=cell,
                    byte_offset=offset,
                    cell_width=width,
                )
            )

    def _build(self) -> None:
        for module in self.system.modules():
            # RAM: persistent state cells
            for spec in module.state.specs():
                self._add(
                    Region.RAM, CellKind.STATE, module.name,
                    spec.name, spec.width,
                )
            # RAM: backing stores of produced signals
            for port in module.outputs:
                signal = self.system.signal_of_output(module.name, port)
                width = self.system.signal(signal).width
                self._add(
                    Region.RAM, CellKind.SIGNAL, module.name, signal, width,
                )
        for module in self.system.modules():
            # Stack: marshaled arguments
            for port in module.inputs:
                signal = self.system.signal_of_input(module.name, port)
                width = self.system.signal(signal).width
                self._add(
                    Region.STACK, CellKind.ARG, module.name, port, width,
                )
            # Stack: declared locals
            for spec in module.local_specs:
                self._add(
                    Region.STACK, CellKind.LOCAL, module.name,
                    spec.name, spec.width,
                )

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    def locations(
        self, region: Optional[Region] = None
    ) -> List[MemoryLocation]:
        if region is None:
            return list(self._locations)
        return [loc for loc in self._locations if loc.region is region]

    def location(self, index: int) -> MemoryLocation:
        if not 0 <= index < len(self._locations):
            raise InjectionError(
                f"memory location index {index} out of range "
                f"(map has {len(self._locations)} locations)"
            )
        return self._locations[index]

    def ram_size(self) -> int:
        return len(self.locations(Region.RAM))

    def stack_size(self) -> int:
        return len(self.locations(Region.STACK))

    def __len__(self) -> int:
        return len(self._locations)

    def describe(self) -> str:
        """One-line-per-location rendering of the address space."""
        lines = [
            f"memory map: {self.ram_size()} RAM + {self.stack_size()} "
            f"stack locations"
        ]
        lines.extend(
            f"  [{loc.index:3d}] {loc.label} "
            f"({loc.kind.value}, {loc.valid_bits} bits)"
            for loc in self._locations
        )
        return "\n".join(lines)
