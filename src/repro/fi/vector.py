"""Vectorized batch simulation core for injection campaigns.

The scalar campaign path simulates every injected run on its own:
one Python interpreter loop over ticks, module invocations, quantized
stores and hook dispatches per run.  For the two *sampled* campaigns
(permeability and detection) almost all of that work is identical
across runs — same target system, same schedule, same golden dispatch
— and only the tiny injected disturbance differs.  This module batches
such runs: plant state, module state cells, sensor registers and the
signal store become numpy arrays with **one row per run**, and a
target-specific kernel (``repro.watertank.vectorize`` /
``repro.target.vectorize``) advances *all* rows of a batch through
each tick at once.

Correctness contract
--------------------
Batching is a pure execution strategy: outcomes are **bit-identical**
to the scalar path.  Three mechanisms keep that true:

* every kernel is a transcription of the scalar simulator's per-tick
  arithmetic onto int64/float64 arrays (same operation order, same
  quantization points), seeded from the same tick-0
  ``capture_state()`` snapshots;
* dispatch-divergent rows are *retired*: the golden slot schedule is
  asserted after every CLOCK/TIMER invocation, and a row whose control
  flow departs it (a flipped slot number) leaves the batch and is
  recomputed wholesale by the scalar path;
* rows selected for an integrity audit, or running under chaos-test
  instrumentation, never enter a batch at all.

Golden invocation streams — the reference side of the permeability
comparison — are packed once into shared memory
(:class:`repro.fi.shm.ShmArrayPack`) before the worker pool forks.

Enabled with ``CampaignConfig(batch_width=N)`` / ``--batch-width N``
(default 0 = scalar path).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except Exception:  # pragma: no cover - numpy ships with the toolchain
    np = None

__all__ = [
    "VectorStats",
    "vector_stats",
    "RowInjection",
    "VectorRow",
    "GroupJob",
    "GroupResult",
    "BankArrays",
    "BatchRunner",
    "wrap_runner",
    "close_runner",
]


# ======================================================================
# Process-wide counters (mirrors ff_stats / integrity_stats).
# ======================================================================
class VectorStats:
    """Counters of the vectorized core, aggregated into telemetry."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: row-ticks advanced in batch mode (rows x ticks)
        self.batched_ticks = 0
        #: rows retired to the scalar path after dispatch divergence
        self.retired_rows = 0
        #: batches computed
        self.groups = 0
        #: rows whose outcome came from a batch
        self.rows = 0
        #: rows answered by the scalar path (audited, chaos, ungrouped)
        self.scalar_fallbacks = 0

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        return (
            self.batched_ticks,
            self.retired_rows,
            self.groups,
            self.rows,
            self.scalar_fallbacks,
        )


#: the process-wide counters used by all batching machinery.
vector_stats = VectorStats()


# ======================================================================
# Work descriptions exchanged with the target kernels.
# ======================================================================
@dataclass(frozen=True)
class RowInjection:
    """One row's injection: an ``"input"`` (system-input register
    flip at tick ``tick``) or an ``"arg"`` (module-input flip at the
    first invocation at or after ``tick``)."""

    kind: str
    tick: int
    bit: int
    signal: Optional[str] = None  #: input kind: the target signal
    port: Optional[str] = None  #: arg kind: the module input port


@dataclass(frozen=True)
class VectorRow:
    """One run of a batch: which test case, which injection."""

    case_id: int
    injection: RowInjection


@dataclass
class GroupJob:
    """One batch handed to a target kernel."""

    kind: str  #: "permeability" | "detection"
    module: Optional[str]  #: permeability: flipped/recorded module
    rows: List[VectorRow]
    cases: Dict[int, Any]  #: case_id -> test case
    templates: Dict[int, Any]  #: case_id -> tick-0 SimulatorState
    specs: Sequence[Any] = ()  #: assertion specs (detection)


@dataclass
class GroupResult:
    """Per-row outcomes of one kernel batch (parallel lists)."""

    retired: List[bool]
    injected: List[bool]
    first_injection_tick: List[Optional[int]]
    completion_tick: List[Optional[int]]
    #: permeability: recorded invocation streams of the target module —
    #: (rows, n_inv, n_in/n_out) int64 arrays plus per-row lengths
    rec_len: Optional[List[int]] = None
    rec_ins: Optional[Any] = None
    rec_outs: Optional[Any] = None
    #: detection: per-row {ea name -> (fire_count, first_fire_tick)}
    bank: Optional[List[Dict[str, Tuple[int, Optional[int]]]]] = None


# ======================================================================
# Vectorized quantization (see repro.model.signal.quantize).
# ======================================================================
def q_uint(values, width: int):
    """Vectorized UINT quantization: wrap modulo ``2**width``."""
    return values & ((1 << width) - 1)


def q_int(values, width: int):
    """Vectorized two's-complement INT quantization."""
    full = 1 << width
    sign = full >> 1
    masked = values & (full - 1)
    return np.where(masked >= sign, masked - full, masked)


def q_bool(values):
    """Vectorized BOOL quantization: collapse to 0/1."""
    return (values != 0).astype(np.int64)


# ======================================================================
# Vectorized executable-assertion bank (see repro.edm.assertions).
# ======================================================================
class BankArrays:
    """Per-row state of a monitor bank, evaluated on array stores.

    A transcription of :meth:`repro.edm.assertions.AssertionState`:
    one ``_prev`` / fire-accumulator set per (assertion, row), checked
    against the row's signal-store arrays at every evaluation tick.
    """

    def __init__(self, specs: Sequence[Any], n_rows: int):
        self._specs = list(specs)
        self._prev = {
            s.name: np.zeros(n_rows, dtype=np.int64) for s in self._specs
        }
        self._has_prev = {
            s.name: np.zeros(n_rows, dtype=bool) for s in self._specs
        }
        self._fire_count = {
            s.name: np.zeros(n_rows, dtype=np.int64) for s in self._specs
        }
        self._first_fire = {
            s.name: np.full(n_rows, -1, dtype=np.int64) for s in self._specs
        }

    def evaluate(self, store: Dict[str, Any], tick: int, mask=None) -> None:
        """Evaluate every assertion against *store* at *tick*.

        *mask* restricts the evaluation to still-running rows (rows
        outside the mask keep their state untouched, like a scalar run
        that already left its mission loop).
        """
        from repro.edm.assertions import EAKind

        for spec in self._specs:
            value = store[spec.signal]
            name = spec.name
            if spec.kind is EAKind.BOOLEAN:
                fired = (value != 0) & (value != 1)
            else:
                fired = np.zeros(value.shape, dtype=bool)
                if spec.minimum is not None:
                    fired |= value < spec.minimum
                if spec.maximum is not None:
                    fired |= value > spec.maximum
                prev = self._prev[name]
                has_prev = self._has_prev[name]
                if spec.kind is EAKind.RANGE_RATE:
                    rate = np.abs(value - prev) > spec.max_delta
                    fired |= has_prev & rate
                elif spec.kind is EAKind.MONOTONIC:
                    delta = value - prev
                    bad = (delta < 0) | (delta > spec.max_delta)
                    fired |= has_prev & bad
                elif spec.kind is EAKind.SEQUENCE:
                    delta = value - prev
                    if spec.modulus is not None:
                        delta = delta % spec.modulus
                    fired |= has_prev & (delta != spec.exact_delta)
            if mask is not None:
                fired = fired & mask
                update = mask
            else:
                update = None
            count = self._fire_count[name]
            first = self._first_fire[name]
            count += fired
            first[:] = np.where(fired & (first < 0), tick, first)
            if update is None:
                self._prev[name][:] = value
                self._has_prev[name][:] = True
            else:
                prev = self._prev[name]
                prev[:] = np.where(update, value, prev)
                self._has_prev[name] |= update

    def row_records(
        self, row: int
    ) -> Dict[str, Tuple[int, Optional[int]]]:
        """One row's per-EA (fire_count, first_fire_tick)."""
        out: Dict[str, Tuple[int, Optional[int]]] = {}
        for spec in self._specs:
            count = int(self._fire_count[spec.name][row])
            first = int(self._first_fire[spec.name][row])
            out[spec.name] = (count, first if first >= 0 else None)
        return out


# ======================================================================
# Group planning.
# ======================================================================
@dataclass
class _Group:
    gid: int
    module: Optional[str]
    indices: List[int] = field(default_factory=list)


def _task_shape(kind: str, task: tuple):
    """(group key, case, injection) of one campaign task tuple."""
    if kind == "permeability":
        module, in_port, case, from_tick, bit = task
        return (
            module,
            case,
            RowInjection(
                kind="arg", tick=from_tick, bit=bit, port=in_port
            ),
        )
    target, case, tick, bit = task
    return (
        None,
        case,
        RowInjection(kind="input", tick=tick, bit=bit, signal=target),
    )


def _plan_groups(
    kind: str, tasks: Sequence[tuple], batch_width: int
) -> Tuple[Dict[int, _Group], List[_Group]]:
    """Contiguous runs of same-key tasks, capped at *batch_width*.

    Singleton groups are dropped — a batch of one is strictly worse
    than the scalar path.
    """
    groups: List[_Group] = []
    current: Optional[_Group] = None
    current_key: Any = object()
    for index, task in enumerate(tasks):
        key = _task_shape(kind, task)[0]
        if (
            current is None
            or key != current_key
            or len(current.indices) >= batch_width
        ):
            current = _Group(gid=len(groups), module=key)
            current_key = key
            groups.append(current)
        current.indices.append(index)
    kept = [g for g in groups if len(g.indices) >= 2]
    index_of: Dict[int, _Group] = {}
    for group in kept:
        for index in group.indices:
            index_of[index] = group
    return index_of, kept


# ======================================================================
# The batch runner.
# ======================================================================
_RETIRED = object()
#: scalar rows per chunk when the chunk plan batches ungrouped indices.
_SCALAR_CHUNK = 32


def _kernel_for(probe):
    """The vector kernel class supporting *probe*, or ``None``."""
    if np is None:
        return None
    kernels = []
    try:
        from repro.watertank.vectorize import WatertankVectorKernel

        kernels.append(WatertankVectorKernel)
    except Exception:  # pragma: no cover - partial install
        pass
    try:
        from repro.target.vectorize import ArrestmentVectorKernel

        kernels.append(ArrestmentVectorKernel)
    except Exception:  # pragma: no cover - partial install
        pass
    for kernel in kernels:
        try:
            if kernel.supports(probe):
                return kernel
        except Exception:
            continue
    return None


class BatchRunner:
    """Answers campaign task indices from vectorized batches.

    Wraps a campaign's scalar ``runner(index)`` callable.  Task
    indices that belong to a plannable batch are answered by running
    the whole batch through the target's vector kernel once (cached
    per process); everything else — audited rows, chaos runs, rows of
    unsupported targets, retired rows — falls through to the wrapped
    scalar runner, which remains the semantic reference.

    Also exposes the two executor integration hooks:

    * :meth:`timeout_scale_for` — a batch leader computes up to
      ``len(group)`` runs under one per-task alarm, so its budget is
      scaled accordingly;
    * :meth:`chunk_plan` — pool chunks are aligned to batch
      boundaries, so exactly one worker computes each batch.
    """

    def __init__(
        self,
        kind: str,
        tasks: Sequence[tuple],
        inner: Callable[[int], Any],
        batch_width: int,
        factory: Callable[[Any], Any],
        auditor: Optional[Any] = None,
        goldens: Optional[Any] = None,
        direct_only: bool = True,
        specs: Sequence[Any] = (),
    ):
        self._kind = kind
        self._tasks = list(tasks)
        self._inner = inner
        self._auditor = auditor
        self._factory = factory
        self._goldens = goldens
        self._direct_only = direct_only
        self._specs = list(specs)
        self._chaos = any(
            name.startswith("REPRO_CHAOS_") for name in os.environ
        )
        self._cache: Dict[int, Dict[int, Any]] = {}
        self._served: Dict[int, int] = {}
        self._group_of: Dict[int, _Group] = {}
        self._groups: List[_Group] = []
        self._kernel = None
        self._templates: Dict[int, Any] = {}
        self._cases: Dict[int, Any] = {}
        self._pack = None
        self._golden_meta: Dict[Tuple[int, str], Tuple[int, int, int]] = {}
        if batch_width > 0 and len(self._tasks) >= 2:
            self._prepare(batch_width)

    # ------------------------------------------------------------------
    # Pre-fork preparation: plan, templates, golden shm pack.
    # ------------------------------------------------------------------
    def _prepare(self, batch_width: int) -> None:
        for task in self._tasks:
            _, case, _ = _task_shape(self._kind, task)
            self._cases.setdefault(case.case_id, case)
        first_case = next(iter(self._cases.values()))
        probe = self._factory(first_case)
        kernel_cls = _kernel_for(probe)
        if kernel_cls is None:
            return
        self._kernel = kernel_cls(probe)
        self._group_of, self._groups = _plan_groups(
            self._kind, self._tasks, batch_width
        )
        if not self._groups:
            self._kernel = None
            return
        # tick-0 seeds, one per test case: captured before the pool
        # forks so workers share them copy-on-write
        for case_id, case in self._cases.items():
            self._templates[case_id] = self._factory(case).capture_state()
        if self._kind == "permeability" and self._goldens is not None:
            self._publish_golden_streams(probe)

    def _publish_golden_streams(self, probe) -> None:
        """Pack the golden invocation streams the batches will diff
        against into shared memory, once, pre-fork."""
        from repro.fi.shm import ShmArrayPack

        self._pack = ShmArrayPack()
        needed = set()
        for group in self._groups:
            for index in group.indices:
                _, case, _ = _task_shape(self._kind, self._tasks[index])
                needed.add((case.case_id, group.module))
        for case_id, module in sorted(needed):
            golden = self._goldens.get(self._cases[case_id])
            stream = golden.invocations.stream(module)
            mod = probe.system.module(module)
            n = len(stream)
            n_in = len(mod.inputs)
            n_out = len(mod.outputs)
            ins = np.zeros((n, n_in), dtype=np.int64)
            outs = np.zeros((n, n_out), dtype=np.int64)
            for i, (_, in_tuple, out_tuple) in enumerate(stream):
                ins[i] = in_tuple
                outs[i] = out_tuple
            key = f"g{case_id}:{module}"
            self._pack.publish(key + ":ins", ins)
            self._pack.publish(key + ":outs", outs)
            self._golden_meta[(case_id, module)] = (n, n_in, n_out)

    def close(self) -> None:
        if self._pack is not None:
            self._pack.close()
            self._pack = None

    # ------------------------------------------------------------------
    # Executor integration hooks (duck-typed).
    # ------------------------------------------------------------------
    def timeout_scale_for(self, index: int) -> int:
        """Per-task timeout multiplier: a batch leader simulates the
        whole group under its own alarm."""
        group = self._batchable(index)
        if group is None or group.gid in self._cache:
            return 1
        return len(group.indices)

    def chunk_plan(self, indices: Sequence[int]) -> List[List[int]]:
        """Pool chunks aligned to batch boundaries."""
        buckets: Dict[int, List[int]] = {}
        order: List[int] = []
        scalars: List[int] = []
        for index in indices:
            group = self._group_of.get(index)
            if group is None or self._kernel is None:
                scalars.append(index)
                continue
            bucket = buckets.get(group.gid)
            if bucket is None:
                bucket = buckets[group.gid] = []
                order.append(group.gid)
            bucket.append(index)
        chunks = [buckets[gid] for gid in order]
        chunks.extend(
            scalars[i:i + _SCALAR_CHUNK]
            for i in range(0, len(scalars), _SCALAR_CHUNK)
        )
        return chunks

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def _batchable(self, index: int) -> Optional[_Group]:
        if self._kernel is None or self._chaos:
            return None
        group = self._group_of.get(index)
        if group is None:
            return None
        if self._auditor is not None and self._auditor.should_audit(index):
            # audited rows re-run under the integrity machinery — the
            # scalar path stays their single source of truth
            return None
        return group

    def __call__(self, index: int) -> Any:
        group = self._batchable(index)
        if group is None:
            vector_stats.scalar_fallbacks += 1
            return self._inner(index)
        outcomes = self._cache.get(group.gid)
        if outcomes is None:
            outcomes = self._compute_group(group)
            self._cache[group.gid] = outcomes
        outcome = outcomes.get(index, _RETIRED)
        served = self._served.get(group.gid, 0) + 1
        self._served[group.gid] = served
        if served >= len(group.indices):
            # every row answered: drop the batch from the cache
            self._cache.pop(group.gid, None)
            self._served.pop(group.gid, None)
        if outcome is _RETIRED:
            return self._inner(index)
        vector_stats.rows += 1
        return outcome

    # ------------------------------------------------------------------
    # Batch computation and outcome assembly.
    # ------------------------------------------------------------------
    def _compute_group(self, group: _Group) -> Dict[int, Any]:
        rows = []
        for index in group.indices:
            _, case, injection = _task_shape(
                self._kind, self._tasks[index]
            )
            rows.append(
                VectorRow(case_id=case.case_id, injection=injection)
            )
        job = GroupJob(
            kind=self._kind,
            module=group.module,
            rows=rows,
            cases=self._cases,
            templates=self._templates,
            specs=self._specs if self._kind == "detection" else (),
        )
        result = self._kernel.run_group(job)
        vector_stats.groups += 1
        outcomes: Dict[int, Any] = {}
        for row, index in enumerate(group.indices):
            if result.retired[row]:
                vector_stats.retired_rows += 1
                continue
            if self._kind == "permeability":
                outcomes[index] = self._permeability_outcome(
                    group, rows[row], result, row
                )
            else:
                outcomes[index] = self._detection_outcome(
                    rows[row], result, row
                )
        return outcomes

    def _permeability_outcome(
        self, group: _Group, row: VectorRow, result: GroupResult, r: int
    ) -> Optional[List[str]]:
        if not result.injected[r]:
            return None
        completed = result.completion_tick[r]
        first = result.first_injection_tick[r]
        if completed is not None and first is not None and first > completed:
            return None
        meta = self._golden_meta[(row.case_id, group.module)]
        n_golden, n_in, _ = meta
        key = f"g{row.case_id}:{group.module}"
        g_ins = self._pack.get(key + ":ins")
        g_outs = self._pack.get(key + ":outs")
        mod = self._kernel.module_ports(group.module)
        in_ports, out_ports = mod
        injected_idx = in_ports.index(row.injection.port)
        length = min(n_golden, result.rec_len[r])
        r_ins = result.rec_ins[r]
        r_outs = result.rec_outs[r]
        # first differing invocation per output port, then the ports
        # ordered by (invocation index, port order) — exactly the
        # discovery order of first_output_differences
        hits: List[Tuple[int, int, str]] = []
        for k, port in enumerate(out_ports):
            unequal = np.nonzero(
                g_outs[:length, k] != r_outs[:length, k]
            )[0]
            if unequal.size == 0:
                continue
            first_idx = int(unequal[0])
            direct = all(
                g_ins[first_idx, j] == r_ins[first_idx, j]
                for j in range(n_in)
                if j != injected_idx
            )
            if direct or not self._direct_only:
                hits.append((first_idx, k, port))
        hits.sort()
        return [port for _, _, port in hits]

    def _detection_outcome(
        self, row: VectorRow, result: GroupResult, r: int
    ) -> Any:
        if not result.injected[r]:
            return "inactive"
        tick = row.injection.tick
        completed = result.completion_tick[r]
        if completed is not None and tick > completed:
            return "late"
        records = result.bank[r]
        fired = sorted(
            name
            for name, (count, first) in records.items()
            if count > 0 and first is not None and first >= tick
        )
        latencies: Dict[str, int] = {}
        for ea in fired:
            first = records[ea][1]
            if first is not None:
                latencies[ea] = first - tick
        return {"fired": fired, "latencies": latencies}


# ======================================================================
# Campaign-facing helpers.
# ======================================================================
def wrap_runner(
    kind: str,
    runner: Callable[[int], Any],
    tasks: Sequence[tuple],
    config: Optional[Any],
    factory: Callable[[Any], Any],
    auditor: Optional[Any] = None,
    goldens: Optional[Any] = None,
    direct_only: bool = True,
    specs: Sequence[Any] = (),
) -> Callable[[int], Any]:
    """The campaign's runner, batched when the config asks for it.

    Returns *runner* unchanged when batching is off (``batch_width``
    0), numpy is unavailable, or no batch could be planned — the
    scalar path needs no wrapper to stay correct.
    """
    width = 0
    if config is not None:
        vector = getattr(config, "vector", None)
        width = getattr(vector, "batch_width", 0) if vector else 0
    if width <= 0 or np is None:
        return runner
    batched = BatchRunner(
        kind=kind,
        tasks=tasks,
        inner=runner,
        batch_width=width,
        factory=factory,
        auditor=auditor,
        goldens=goldens,
        direct_only=direct_only,
        specs=specs,
    )
    if batched._kernel is None:
        batched.close()
        return runner
    return batched


def close_runner(runner: Any) -> None:
    """Release a wrapped runner's shared-memory segments (no-op for
    plain scalar runners)."""
    if isinstance(runner, BatchRunner):
        runner.close()
