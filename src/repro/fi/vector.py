"""Vectorized batch simulation core for injection campaigns.

The scalar campaign path simulates every injected run on its own:
one Python interpreter loop over ticks, module invocations, quantized
stores and hook dispatches per run.  Across all four campaigns —
permeability, detection, and the enumerative memory and recovery
sweeps — almost all of that work is identical across runs, even runs
of *different test cases*: same target system, same schedule, same
per-tick arithmetic; only the tiny injected disturbance and the
per-case seed state differ.  This module batches such runs: plant
state, module state cells, sensor registers and the signal store
become numpy arrays with **one row per run** (rows of a group may mix
test cases; each row is seeded from its own case's tick-0 snapshot
and diffed against its own golden stream via per-row indirection),
and a target-specific kernel (``repro.watertank.vectorize`` /
``repro.target.vectorize``) advances *all* rows of a batch through
each tick at once.  Memory/recovery rows vectorize the periodic
single-bit flips of :class:`repro.fi.injector.PeriodicMemoryFlip`
(:class:`MemoryFlipPlan`), and recovery groups run twice — a plain
detection pass and a containment pass with a
:class:`RecoveringBankArrays` poking substitutions into the store.

Correctness contract
--------------------
Batching is a pure execution strategy: outcomes are **bit-identical**
to the scalar path.  Three mechanisms keep that true:

* every kernel is a transcription of the scalar simulator's per-tick
  arithmetic onto int64/float64 arrays (same operation order, same
  quantization points), seeded from the same tick-0
  ``capture_state()`` snapshots;
* dispatch-divergent rows are *retired*: the golden slot schedule is
  asserted after every CLOCK/TIMER invocation, and a row whose control
  flow departs it (a flipped slot number) leaves the batch and is
  recomputed wholesale by the scalar path;
* rows selected for an integrity audit, or running under chaos-test
  instrumentation, never enter a batch at all.

Golden invocation streams — the reference side of the permeability
comparison — are packed once into shared memory
(:class:`repro.fi.shm.ShmArrayPack`) before the worker pool forks.

Enabled with ``CampaignConfig(batch_width=N)`` / ``--batch-width N``
(default 0 = scalar path).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except Exception:  # pragma: no cover - numpy ships with the toolchain
    np = None

__all__ = [
    "VectorStats",
    "vector_stats",
    "RowInjection",
    "VectorRow",
    "GroupJob",
    "GroupResult",
    "BankArrays",
    "RecoveringBankArrays",
    "MemoryFlipPlan",
    "flip_cells",
    "BatchRunner",
    "wrap_runner",
    "close_runner",
]


# ======================================================================
# Process-wide counters (mirrors ff_stats / integrity_stats).
# ======================================================================
class VectorStats:
    """Counters of the vectorized core, aggregated into telemetry."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: row-ticks advanced in batch mode (rows x ticks)
        self.batched_ticks = 0
        #: rows retired to the scalar path after dispatch divergence
        self.retired_rows = 0
        #: batches computed
        self.groups = 0
        #: rows whose outcome came from a batch
        self.rows = 0
        #: rows answered by the scalar path (audited, chaos, ungrouped)
        self.scalar_fallbacks = 0
        #: computed groups whose rows span more than one test case
        self.cross_case_groups = 0
        #: total row capacity of computed groups (groups x batch width)
        self.group_capacity = 0

    def as_tuple(self) -> Tuple[int, int, int, int, int, int, int]:
        return (
            self.batched_ticks,
            self.retired_rows,
            self.groups,
            self.rows,
            self.scalar_fallbacks,
            self.cross_case_groups,
            self.group_capacity,
        )


#: the process-wide counters used by all batching machinery.
vector_stats = VectorStats()


# ======================================================================
# Work descriptions exchanged with the target kernels.
# ======================================================================
@dataclass(frozen=True)
class RowInjection:
    """One row's injection: an ``"input"`` (system-input register
    flip at tick ``tick``), an ``"arg"`` (module-input flip at the
    first invocation at or after ``tick``), or a ``"memory"``
    (periodic single-bit flip of one memory cell, phase ``tick``,
    every ``period`` ticks — see
    :class:`repro.fi.injector.PeriodicMemoryFlip`)."""

    kind: str
    tick: int
    bit: int
    signal: Optional[str] = None  #: input kind: the target signal
    port: Optional[str] = None  #: arg kind: the module input port
    #: memory kind: cell class ("state" | "signal" | "arg" | "local")
    memory_kind: Optional[str] = None
    module: Optional[str] = None  #: memory kind: owning module
    cell: Optional[str] = None  #: memory kind: cell/signal/port name
    period: int = 0  #: memory kind: flip period in ticks


@dataclass(frozen=True)
class VectorRow:
    """One run of a batch: which test case, which injection."""

    case_id: int
    injection: RowInjection


@dataclass
class GroupJob:
    """One batch handed to a target kernel."""

    kind: str  #: "permeability" | "detection" | "memory" | "recovery"
    module: Optional[str]  #: permeability: flipped/recorded module
    rows: List[VectorRow]
    cases: Dict[int, Any]  #: case_id -> test case
    templates: Dict[int, Any]  #: case_id -> tick-0 SimulatorState
    specs: Sequence[Any] = ()  #: assertion specs (detection/memory)
    policies: Any = None  #: recovery: {ea name -> RecoveryPolicy}
    recover: bool = False  #: recovery: containment pass (vs baseline)


@dataclass
class GroupResult:
    """Per-row outcomes of one kernel batch (parallel lists)."""

    retired: List[bool]
    injected: List[bool]
    first_injection_tick: List[Optional[int]]
    completion_tick: List[Optional[int]]
    #: permeability: recorded invocation streams of the target module —
    #: (rows, n_inv, n_in/n_out) int64 arrays plus per-row lengths
    rec_len: Optional[List[int]] = None
    rec_ins: Optional[Any] = None
    rec_outs: Optional[Any] = None
    #: detection: per-row {ea name -> (fire_count, first_fire_tick)}
    bank: Optional[List[Dict[str, Tuple[int, Optional[int]]]]] = None
    #: memory/recovery: per-row mission verdict (safety failure)
    failed: Optional[List[bool]] = None
    #: recovery containment pass: per-row recovery action counts
    actions: Optional[List[int]] = None


# ======================================================================
# Vectorized quantization (see repro.model.signal.quantize).
# ======================================================================
def q_uint(values, width: int):
    """Vectorized UINT quantization: wrap modulo ``2**width``."""
    return values & ((1 << width) - 1)


def q_int(values, width: int):
    """Vectorized two's-complement INT quantization."""
    full = 1 << width
    sign = full >> 1
    masked = values & (full - 1)
    return np.where(masked >= sign, masked - full, masked)


def q_bool(values):
    """Vectorized BOOL quantization: collapse to 0/1."""
    return (values != 0).astype(np.int64)


def flip_cells(values, bitmask, sig_type, width: int):
    """Vectorized :func:`repro.model.signal.flip_bit` for int-backed
    cells (UINT/INT/BOOL; FLOAT cells never enter a batch)."""
    from repro.model.signal import SignalType

    raw = (np.asarray(values, dtype=np.int64) & ((1 << width) - 1)) ^ bitmask
    if sig_type is SignalType.BOOL:
        return q_bool(raw)
    if sig_type is SignalType.INT:
        return q_int(raw, width)
    return raw


# ======================================================================
# Vectorized executable-assertion bank (see repro.edm.assertions).
# ======================================================================
class BankArrays:
    """Per-row state of a monitor bank, evaluated on array stores.

    A transcription of :meth:`repro.edm.assertions.AssertionState`:
    one ``_prev`` / fire-accumulator set per (assertion, row), checked
    against the row's signal-store arrays at every evaluation tick.
    """

    def __init__(self, specs: Sequence[Any], n_rows: int):
        self._specs = list(specs)
        self._prev = {
            s.name: np.zeros(n_rows, dtype=np.int64) for s in self._specs
        }
        self._has_prev = {
            s.name: np.zeros(n_rows, dtype=bool) for s in self._specs
        }
        self._fire_count = {
            s.name: np.zeros(n_rows, dtype=np.int64) for s in self._specs
        }
        self._first_fire = {
            s.name: np.full(n_rows, -1, dtype=np.int64) for s in self._specs
        }

    def _fired_mask(self, spec, value):
        """The per-row fire decision for *spec* at *value*, read
        against the current reference state (``_prev`` untouched)."""
        from repro.edm.assertions import EAKind

        if spec.kind is EAKind.BOOLEAN:
            return (value != 0) & (value != 1)
        fired = np.zeros(value.shape, dtype=bool)
        if spec.minimum is not None:
            fired |= value < spec.minimum
        if spec.maximum is not None:
            fired |= value > spec.maximum
        prev = self._prev[spec.name]
        has_prev = self._has_prev[spec.name]
        if spec.kind is EAKind.RANGE_RATE:
            rate = np.abs(value - prev) > spec.max_delta
            fired |= has_prev & rate
        elif spec.kind is EAKind.MONOTONIC:
            delta = value - prev
            bad = (delta < 0) | (delta > spec.max_delta)
            fired |= has_prev & bad
        elif spec.kind is EAKind.SEQUENCE:
            delta = value - prev
            if spec.modulus is not None:
                delta = delta % spec.modulus
            fired |= has_prev & (delta != spec.exact_delta)
        return fired

    def evaluate(self, store: Dict[str, Any], tick: int, mask=None) -> None:
        """Evaluate every assertion against *store* at *tick*.

        *mask* restricts the evaluation to still-running rows (rows
        outside the mask keep their state untouched, like a scalar run
        that already left its mission loop).
        """
        for spec in self._specs:
            value = store[spec.signal]
            name = spec.name
            fired = self._fired_mask(spec, value)
            if mask is not None:
                fired = fired & mask
                update = mask
            else:
                update = None
            count = self._fire_count[name]
            first = self._first_fire[name]
            count += fired
            first[:] = np.where(fired & (first < 0), tick, first)
            if update is None:
                self._prev[name][:] = value
                self._has_prev[name][:] = True
            else:
                prev = self._prev[name]
                prev[:] = np.where(update, value, prev)
                self._has_prev[name] |= update

    def row_records(
        self, row: int
    ) -> Dict[str, Tuple[int, Optional[int]]]:
        """One row's per-EA (fire_count, first_fire_tick)."""
        out: Dict[str, Tuple[int, Optional[int]]] = {}
        for spec in self._specs:
            count = int(self._fire_count[spec.name][row])
            first = int(self._first_fire[spec.name][row])
            out[spec.name] = (count, first if first >= 0 else None)
        return out


class RecoveringBankArrays(BankArrays):
    """Vectorized :class:`repro.edm.recovery.RecoveringMonitorBank`:
    detection plus per-row containment pokes into the batch's store.

    Each assertion is evaluated in spec order; fired rows are poked
    back to a last-good (HOLD_LAST_GOOD) or clamped (CLAMP_TO_SPEC)
    value — quantized exactly like ``store.poke`` — and the reference
    state is rebased on the raw substituted value, so later specs and
    ticks see the substituted signal just as in the scalar bank.
    """

    def __init__(
        self,
        specs: Sequence[Any],
        n_rows: int,
        policies: Optional[Dict[str, Any]] = None,
        q_store: Optional[Callable[[str, Any], Any]] = None,
    ):
        super().__init__(specs, n_rows)
        from repro.edm.recovery import RecoveryPolicy

        policies = dict(policies or {})
        self._policy = {
            s.name: policies.get(s.name, RecoveryPolicy.HOLD_LAST_GOOD)
            for s in self._specs
        }
        self._q_store = q_store
        self._last_good = {
            s.name: np.zeros(n_rows, dtype=np.int64) for s in self._specs
        }
        self._has_good = {
            s.name: np.zeros(n_rows, dtype=bool) for s in self._specs
        }
        #: per-row count of recovery substitutions performed
        self.actions = np.zeros(n_rows, dtype=np.int64)

    def evaluate(self, store: Dict[str, Any], tick: int, mask=None) -> None:
        from repro.edm.recovery import RecoveryPolicy

        for spec in self._specs:
            name = spec.name
            value = store[spec.signal]
            fired = self._fired_mask(spec, value)
            if mask is not None:
                fired = fired & mask
                update = mask
            else:
                update = np.ones(value.shape, dtype=bool)
            count = self._fire_count[name]
            first = self._first_fire[name]
            count += fired
            first[:] = np.where(fired & (first < 0), tick, first)
            prev = self._prev[name]
            prev[:] = np.where(update, value, prev)
            self._has_prev[name] |= update
            # containment (RecoveringMonitorBank._on_tick): last-good
            # tracks non-fired observations only
            good = self._last_good[name]
            has_good = self._has_good[name]
            not_fired = update & ~fired
            good[:] = np.where(not_fired, value, good)
            has_good |= not_fired
            policy = self._policy[name]
            if policy is RecoveryPolicy.DETECT_ONLY:
                continue
            if policy is RecoveryPolicy.CLAMP_TO_SPEC:
                clamped = value
                if spec.minimum is not None:
                    clamped = np.maximum(clamped, spec.minimum)
                if spec.maximum is not None:
                    clamped = np.minimum(clamped, spec.maximum)
                changed = clamped != value
                substituted = np.where(changed, clamped, good)
                valid = fired & (changed | has_good)
            else:  # HOLD_LAST_GOOD
                substituted = good
                valid = fired & has_good
            if valid.any():
                quantized = self._q_store(spec.signal, substituted)
                store[spec.signal] = np.where(
                    valid, quantized, store[spec.signal]
                )
                prev[:] = np.where(valid, substituted, prev)
                self.actions += valid


# ======================================================================
# Vectorized periodic memory flips (see PeriodicMemoryFlip).
# ======================================================================
class MemoryFlipPlan:
    """The per-row flip schedule of one memory/recovery batch.

    A transcription of the scalar injector's three strike paths
    (:class:`repro.fi.injector.FaultInjector` with a
    ``PeriodicMemoryFlip`` spec): RAM flips — state cells and signal
    backing stores — land in the pre-tick phase at every period
    boundary; stack flips — module args and locals — are *armed* at
    the boundary and strike the owning module's next marshal or local
    write, then disarm.
    """

    def __init__(self, kernel, rows: Sequence[VectorRow], first_inj):
        n = len(rows)
        self._first_inj = first_inj
        self._phase = np.array(
            [row.injection.tick for row in rows], dtype=np.int64
        )
        self._period = np.array(
            [max(1, row.injection.period) for row in rows], dtype=np.int64
        )
        self._armed = np.zeros(n, dtype=bool)
        self._live = None
        self._tick = 0
        stack = np.zeros(n, dtype=bool)
        state_rows: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        signal_rows: Dict[str, List[Tuple[int, int]]] = {}
        arg_rows: Dict[str, Dict[str, List[Tuple[int, int]]]] = {}
        local_rows: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        for r, row in enumerate(rows):
            inj = row.injection
            pair = (r, 1 << inj.bit)
            if inj.memory_kind == "state":
                state_rows.setdefault((inj.module, inj.cell), []).append(pair)
            elif inj.memory_kind == "signal":
                signal_rows.setdefault(inj.cell, []).append(pair)
            elif inj.memory_kind == "arg":
                arg_rows.setdefault(inj.module, {}).setdefault(
                    inj.cell, []
                ).append(pair)
                stack[r] = True
            else:  # local
                local_rows.setdefault((inj.module, inj.cell), []).append(pair)
                stack[r] = True
        self._stack = stack

        def _bucket(pairs):
            idx = np.array([p[0] for p in pairs], dtype=np.int64)
            bms = np.array([p[1] for p in pairs], dtype=np.int64)
            return idx, bms

        self._state = []
        for (module, cell), pairs in state_rows.items():
            ctype, width = kernel.state_spec[(module, cell)]
            self._state.append((module, cell, *_bucket(pairs), ctype, width))
        self._signal = []
        for cell, pairs in signal_rows.items():
            stype, width = kernel.quant[cell]
            self._signal.append((cell, *_bucket(pairs), stype, width))
        self._arg: Dict[str, list] = {}
        for module, ports in arg_rows.items():
            in_ports, _, in_sigs, _ = kernel.ports[module]
            entries = []
            for cell, pairs in ports.items():
                j = in_ports.index(cell)
                stype, width = kernel.quant[in_sigs[j]]
                entries.append((j, *_bucket(pairs), stype, width))
            self._arg[module] = entries
        self._local: Dict[Tuple[str, str], tuple] = {}
        for (module, cell), pairs in local_rows.items():
            ctype, width = kernel.local_spec[(module, cell)]
            self._local[(module, cell)] = (*_bucket(pairs), ctype, width)
        self._succ_cells = frozenset(getattr(kernel, "succ_cells", ()))
        self._any_armed = False
        self._build_schedule()

    def _build_schedule(self) -> None:
        """Precompute, per (period, tick residue), which RAM flip
        buckets can fire.  A full sweep plans one bucket per memory
        location, so scanning every bucket every tick dwarfs the
        handful that actually flip; the boundary condition collapses
        to ``tick % period == phase % period``, letting
        :meth:`pre_tick` visit only the current residue's buckets."""
        tables = {
            int(P): [[] for _ in range(int(P))]
            for P in np.unique(self._period)
        }

        def _split(entry):
            is_state = len(entry) == 6
            if is_state:
                module, cell, idx, bms, type_, width = entry
                rebuild = (module, cell) in self._succ_cells
                key = (module, cell)
            else:
                key, idx, bms, type_, width = entry
                rebuild = False
            periods = self._period[idx]
            phases = self._phase[idx]
            for P, table in tables.items():
                for residue in np.unique(phases[periods == P] % P):
                    m = (periods == P) & ((phases % P) == residue)
                    table[int(residue)].append((
                        is_state, key, idx[m], bms[m], phases[m],
                        type_, width, rebuild,
                    ))

        for entry in self._state:
            _split(entry)
        for entry in self._signal:
            _split(entry)
        self._schedules = list(tables.items())

    def _record(self, rsel, tick: int) -> None:
        first = self._first_inj
        first[rsel] = np.where(first[rsel] < 0, tick, first[rsel])

    def pre_tick(self, tick: int, S, M, live=None) -> bool:
        """Apply RAM flips / arm stack rows at this tick's period
        boundaries.  Returns True when a dispatch-successor state cell
        was flipped (the kernel must re-stack its gathered schedule)."""
        boundary = (tick >= self._phase) & (
            (tick - self._phase) % self._period == 0
        )
        if live is not None:
            boundary = boundary & live
        self._tick = tick
        self._live = live
        if not boundary.any():
            return False
        rebuild = False
        for P, table in self._schedules:
            for entry in table[tick % P]:
                (is_state, key, idx, bms, phases,
                 type_, width, is_succ) = entry
                sel = tick >= phases
                if live is not None:
                    sel = sel & live[idx]
                if not sel.any():
                    continue
                rsel = idx[sel]
                arr = M[key[0]][key[1]] if is_state else S[key]
                arr[rsel] = flip_cells(arr[rsel], bms[sel], type_, width)
                self._record(rsel, tick)
                if is_succ:
                    rebuild = True
        armed_now = boundary & self._stack
        if armed_now.any():
            self._armed |= armed_now
            self._any_armed = True
        return rebuild

    def marshal(self, module: str, args: List[Any]) -> None:
        """Strike armed arg rows at *module*'s marshaling, in place on
        the freshly copied arg arrays."""
        if not self._any_armed:
            return
        entries = self._arg.get(module)
        if entries is None:
            return
        for j, idx, bms, stype, width in entries:
            sel = self._armed[idx]
            if self._live is not None:
                sel = sel & self._live[idx]
            if not sel.any():
                continue
            rsel = idx[sel]
            arr = args[j]
            arr[rsel] = flip_cells(arr[rsel], bms[sel], stype, width)
            self._record(rsel, self._tick)
            self._armed[rsel] = False
            self._any_armed = bool(self._armed.any())

    def scoped_live(self, mask):
        """Narrow the live-row mask to *mask* for one masked module
        invocation (per-row dispatch: only the rows whose schedule
        dispatched the module may take arg/local strikes); returns the
        previous mask for :meth:`restore_live`."""
        prev = self._live
        self._live = mask if prev is None else (prev & mask)
        return prev

    def restore_live(self, prev) -> None:
        self._live = prev

    def local(self, module: str, name: str, values):
        """Strike armed local rows at the (module, local) write point;
        returns the (possibly copied and flipped) values array."""
        if not self._any_armed:
            return values
        bucket = self._local.get((module, name))
        if bucket is None:
            return values
        idx, bms, ctype, width = bucket
        sel = self._armed[idx]
        if self._live is not None:
            sel = sel & self._live[idx]
        if not sel.any():
            return values
        rsel = idx[sel]
        out = np.array(values, dtype=np.int64, copy=True)
        out[rsel] = flip_cells(out[rsel], bms[sel], ctype, width)
        self._record(rsel, self._tick)
        self._armed[rsel] = False
        self._any_armed = bool(self._armed.any())
        return out


# ======================================================================
# Group planning.
# ======================================================================
@dataclass
class _Group:
    gid: int
    module: Optional[str]
    indices: List[int] = field(default_factory=list)


def _task_shape(kind: str, task: tuple, period_ticks: int = 0):
    """(group key, case, injection) of one campaign task tuple."""
    if kind == "permeability":
        module, in_port, case, from_tick, bit = task
        return (
            module,
            case,
            RowInjection(
                kind="arg", tick=from_tick, bit=bit, port=in_port
            ),
        )
    if kind in ("memory", "recovery"):
        location, case, bit, phase = task
        memory_kind, module, cell, cell_bit = location.vector_descriptor(bit)
        return (
            None,
            case,
            RowInjection(
                kind="memory",
                tick=phase,
                bit=cell_bit,
                memory_kind=memory_kind,
                module=module,
                cell=cell,
                period=period_ticks,
            ),
        )
    target, case, tick, bit = task
    return (
        None,
        case,
        RowInjection(kind="input", tick=tick, bit=bit, signal=target),
    )


def _plan_groups(
    kind: str,
    tasks: Sequence[tuple],
    batch_width: int,
    period_ticks: int = 0,
    supported: Optional[Callable[[RowInjection], bool]] = None,
) -> Tuple[Dict[int, _Group], List[_Group]]:
    """Contiguous runs of same-key tasks, capped at *batch_width*.

    Singleton groups are dropped — a batch of one is strictly worse
    than the scalar path.  Injections the kernel cannot strike inside
    a batch (*supported* says no — e.g. float-backed memory cells)
    stay on the scalar path and break the contiguous run.
    """
    groups: List[_Group] = []
    current: Optional[_Group] = None
    current_key: Any = object()
    for index, task in enumerate(tasks):
        key, _, injection = _task_shape(kind, task, period_ticks)
        if supported is not None and not supported(injection):
            current = None
            current_key = object()
            continue
        if (
            current is None
            or key != current_key
            or len(current.indices) >= batch_width
        ):
            current = _Group(gid=len(groups), module=key)
            current_key = key
            groups.append(current)
        current.indices.append(index)
    kept = [g for g in groups if len(g.indices) >= 2]
    index_of: Dict[int, _Group] = {}
    for group in kept:
        for index in group.indices:
            index_of[index] = group
    return index_of, kept


# ======================================================================
# The batch runner.
# ======================================================================
_RETIRED = object()
#: scalar rows per chunk when the chunk plan batches ungrouped indices.
_SCALAR_CHUNK = 32


def _kernel_for(probe):
    """The vector kernel class supporting *probe*, or ``None``."""
    if np is None:
        return None
    kernels = []
    try:
        from repro.watertank.vectorize import WatertankVectorKernel

        kernels.append(WatertankVectorKernel)
    except Exception:  # pragma: no cover - partial install
        pass
    try:
        from repro.target.vectorize import ArrestmentVectorKernel

        kernels.append(ArrestmentVectorKernel)
    except Exception:  # pragma: no cover - partial install
        pass
    for kernel in kernels:
        try:
            if kernel.supports(probe):
                return kernel
        except Exception:
            continue
    return None


class BatchRunner:
    """Answers campaign task indices from vectorized batches.

    Wraps a campaign's scalar ``runner(index)`` callable.  Task
    indices that belong to a plannable batch are answered by running
    the whole batch through the target's vector kernel once (cached
    per process); everything else — audited rows, chaos runs, rows of
    unsupported targets, retired rows — falls through to the wrapped
    scalar runner, which remains the semantic reference.

    Also exposes the two executor integration hooks:

    * :meth:`timeout_scale_for` — a batch leader computes up to
      ``len(group)`` runs under one per-task alarm, so its budget is
      scaled accordingly;
    * :meth:`chunk_plan` — pool chunks are aligned to batch
      boundaries, so exactly one worker computes each batch.
    """

    def __init__(
        self,
        kind: str,
        tasks: Sequence[tuple],
        inner: Callable[[int], Any],
        batch_width: int,
        factory: Callable[[Any], Any],
        auditor: Optional[Any] = None,
        goldens: Optional[Any] = None,
        direct_only: bool = True,
        specs: Sequence[Any] = (),
        policies: Optional[Any] = None,
        period_ticks: int = 0,
    ):
        self._kind = kind
        self._tasks = list(tasks)
        self._inner = inner
        self._auditor = auditor
        self._factory = factory
        self._goldens = goldens
        self._direct_only = direct_only
        self._specs = list(specs)
        self._policies = policies
        self._period = period_ticks
        self._width = batch_width
        self._chaos = any(
            name.startswith("REPRO_CHAOS_") for name in os.environ
        )
        self._cache: Dict[int, Dict[int, Any]] = {}
        self._served: Dict[int, int] = {}
        self._group_of: Dict[int, _Group] = {}
        self._groups: List[_Group] = []
        self._kernel = None
        self._templates: Dict[int, Any] = {}
        self._cases: Dict[int, Any] = {}
        self._pack = None
        self._golden_meta: Dict[Tuple[int, str], Tuple[int, int, int]] = {}
        if batch_width > 0 and len(self._tasks) >= 2:
            self._prepare(batch_width)

    # ------------------------------------------------------------------
    # Pre-fork preparation: plan, templates, golden shm pack.
    # ------------------------------------------------------------------
    def _prepare(self, batch_width: int) -> None:
        for task in self._tasks:
            _, case, _ = _task_shape(self._kind, task, self._period)
            self._cases.setdefault(case.case_id, case)
        first_case = next(iter(self._cases.values()))
        probe = self._factory(first_case)
        kernel_cls = _kernel_for(probe)
        if kernel_cls is None:
            return
        self._kernel = kernel_cls(probe)
        self._group_of, self._groups = _plan_groups(
            self._kind,
            self._tasks,
            batch_width,
            period_ticks=self._period,
            supported=getattr(self._kernel, "supports_injection", None),
        )
        if not self._groups:
            self._kernel = None
            return
        # tick-0 seeds, one per test case: captured before the pool
        # forks so workers share them copy-on-write
        for case_id, case in self._cases.items():
            self._templates[case_id] = self._factory(case).capture_state()
        if self._kind == "permeability" and self._goldens is not None:
            self._publish_golden_streams(probe)

    def _publish_golden_streams(self, probe) -> None:
        """Pack the golden invocation streams the batches will diff
        against into shared memory, once, pre-fork."""
        from repro.fi.shm import ShmArrayPack

        self._pack = ShmArrayPack()
        needed = set()
        for group in self._groups:
            for index in group.indices:
                _, case, _ = _task_shape(self._kind, self._tasks[index])
                needed.add((case.case_id, group.module))
        for case_id, module in sorted(needed):
            golden = self._goldens.get(self._cases[case_id])
            stream = golden.invocations.stream(module)
            mod = probe.system.module(module)
            n = len(stream)
            n_in = len(mod.inputs)
            n_out = len(mod.outputs)
            ins = np.zeros((n, n_in), dtype=np.int64)
            outs = np.zeros((n, n_out), dtype=np.int64)
            for i, (_, in_tuple, out_tuple) in enumerate(stream):
                ins[i] = in_tuple
                outs[i] = out_tuple
            key = f"g{case_id}:{module}"
            self._pack.publish(key + ":ins", ins)
            self._pack.publish(key + ":outs", outs)
            self._golden_meta[(case_id, module)] = (n, n_in, n_out)

    def close(self) -> None:
        if self._pack is not None:
            self._pack.close()
            self._pack = None

    # ------------------------------------------------------------------
    # Executor integration hooks (duck-typed).
    # ------------------------------------------------------------------
    def timeout_scale_for(self, index: int) -> int:
        """Per-task timeout multiplier: a batch leader simulates the
        whole group under its own alarm."""
        group = self._batchable(index)
        if group is None or group.gid in self._cache:
            return 1
        return len(group.indices)

    def chunk_plan(self, indices: Sequence[int]) -> List[List[int]]:
        """Pool chunks aligned to batch boundaries."""
        buckets: Dict[int, List[int]] = {}
        order: List[int] = []
        scalars: List[int] = []
        for index in indices:
            group = self._group_of.get(index)
            if group is None or self._kernel is None:
                scalars.append(index)
                continue
            bucket = buckets.get(group.gid)
            if bucket is None:
                bucket = buckets[group.gid] = []
                order.append(group.gid)
            bucket.append(index)
        chunks = [buckets[gid] for gid in order]
        chunks.extend(
            scalars[i:i + _SCALAR_CHUNK]
            for i in range(0, len(scalars), _SCALAR_CHUNK)
        )
        return chunks

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def _batchable(self, index: int) -> Optional[_Group]:
        if self._kernel is None or self._chaos:
            return None
        group = self._group_of.get(index)
        if group is None:
            return None
        if self._auditor is not None and self._auditor.should_audit(index):
            # audited rows re-run under the integrity machinery — the
            # scalar path stays their single source of truth
            return None
        return group

    def __call__(self, index: int) -> Any:
        group = self._batchable(index)
        if group is None:
            vector_stats.scalar_fallbacks += 1
            return self._inner(index)
        outcomes = self._cache.get(group.gid)
        if outcomes is None:
            outcomes = self._compute_group(group)
            self._cache[group.gid] = outcomes
        outcome = outcomes.get(index, _RETIRED)
        served = self._served.get(group.gid, 0) + 1
        self._served[group.gid] = served
        if served >= len(group.indices):
            # every row answered: drop the batch from the cache
            self._cache.pop(group.gid, None)
            self._served.pop(group.gid, None)
        if outcome is _RETIRED:
            return self._inner(index)
        vector_stats.rows += 1
        return outcome

    # ------------------------------------------------------------------
    # Batch computation and outcome assembly.
    # ------------------------------------------------------------------
    def _compute_group(self, group: _Group) -> Dict[int, Any]:
        import dataclasses

        rows = []
        for index in group.indices:
            _, case, injection = _task_shape(
                self._kind, self._tasks[index], self._period
            )
            rows.append(
                VectorRow(case_id=case.case_id, injection=injection)
            )
        job = GroupJob(
            kind=self._kind,
            module=group.module,
            rows=rows,
            cases=self._cases,
            templates=self._templates,
            specs=(
                self._specs
                if self._kind in ("detection", "memory", "recovery")
                else ()
            ),
            policies=self._policies if self._kind == "recovery" else None,
            recover=False,
        )
        result = self._kernel.run_group(job)
        wrapped = None
        if self._kind == "recovery":
            # the containment pass: same rows, same injections, but a
            # recovering bank poking substitutions into the store
            wrapped = self._kernel.run_group(
                dataclasses.replace(job, recover=True)
            )
        vector_stats.groups += 1
        vector_stats.group_capacity += self._width
        if len({row.case_id for row in rows}) > 1:
            vector_stats.cross_case_groups += 1
        outcomes: Dict[int, Any] = {}
        for row, index in enumerate(group.indices):
            retired = result.retired[row] or (
                wrapped is not None and wrapped.retired[row]
            )
            if retired:
                vector_stats.retired_rows += 1
                continue
            if self._kind == "permeability":
                outcomes[index] = self._permeability_outcome(
                    group, rows[row], result, row
                )
            elif self._kind == "memory":
                outcomes[index] = self._memory_outcome(result, row)
            elif self._kind == "recovery":
                outcomes[index] = self._recovery_outcome(
                    result, wrapped, row
                )
            else:
                outcomes[index] = self._detection_outcome(
                    rows[row], result, row
                )
        return outcomes

    def _permeability_outcome(
        self, group: _Group, row: VectorRow, result: GroupResult, r: int
    ) -> Optional[List[str]]:
        if not result.injected[r]:
            return None
        completed = result.completion_tick[r]
        first = result.first_injection_tick[r]
        if completed is not None and first is not None and first > completed:
            return None
        meta = self._golden_meta[(row.case_id, group.module)]
        n_golden, n_in, _ = meta
        key = f"g{row.case_id}:{group.module}"
        g_ins = self._pack.get(key + ":ins")
        g_outs = self._pack.get(key + ":outs")
        mod = self._kernel.module_ports(group.module)
        in_ports, out_ports = mod
        injected_idx = in_ports.index(row.injection.port)
        length = min(n_golden, result.rec_len[r])
        r_ins = result.rec_ins[r]
        r_outs = result.rec_outs[r]
        # first differing invocation per output port, then the ports
        # ordered by (invocation index, port order) — exactly the
        # discovery order of first_output_differences
        hits: List[Tuple[int, int, str]] = []
        for k, port in enumerate(out_ports):
            unequal = np.nonzero(
                g_outs[:length, k] != r_outs[:length, k]
            )[0]
            if unequal.size == 0:
                continue
            first_idx = int(unequal[0])
            direct = all(
                g_ins[first_idx, j] == r_ins[first_idx, j]
                for j in range(n_in)
                if j != injected_idx
            )
            if direct or not self._direct_only:
                hits.append((first_idx, k, port))
        hits.sort()
        return [port for _, _, port in hits]

    def _memory_outcome(self, result: GroupResult, r: int) -> Any:
        if not result.injected[r]:
            return None
        records = result.bank[r]
        return {
            "fired": sorted(
                name
                for name, (count, _) in records.items()
                if count > 0
            ),
            "failed": bool(result.failed[r]),
        }

    def _recovery_outcome(
        self, baseline: GroupResult, wrapped: GroupResult, r: int
    ) -> Any:
        if not baseline.injected[r]:
            return None
        records = baseline.bank[r]
        return {
            "detected": bool(
                any(count > 0 for count, _ in records.values())
            ),
            "baseline_failed": bool(baseline.failed[r]),
            "recovered_failed": bool(wrapped.failed[r]),
            "recovery_actions": int(wrapped.actions[r]),
        }

    def _detection_outcome(
        self, row: VectorRow, result: GroupResult, r: int
    ) -> Any:
        if not result.injected[r]:
            return "inactive"
        tick = row.injection.tick
        completed = result.completion_tick[r]
        if completed is not None and tick > completed:
            return "late"
        records = result.bank[r]
        fired = sorted(
            name
            for name, (count, first) in records.items()
            if count > 0 and first is not None and first >= tick
        )
        latencies: Dict[str, int] = {}
        for ea in fired:
            first = records[ea][1]
            if first is not None:
                latencies[ea] = first - tick
        return {"fired": fired, "latencies": latencies}


# ======================================================================
# Campaign-facing helpers.
# ======================================================================
def wrap_runner(
    kind: str,
    runner: Callable[[int], Any],
    tasks: Sequence[tuple],
    config: Optional[Any],
    factory: Callable[[Any], Any],
    auditor: Optional[Any] = None,
    goldens: Optional[Any] = None,
    direct_only: bool = True,
    specs: Sequence[Any] = (),
    policies: Optional[Any] = None,
    period_ticks: int = 0,
) -> Callable[[int], Any]:
    """The campaign's runner, batched when the config asks for it.

    Returns *runner* unchanged when batching is off (``batch_width``
    0), numpy is unavailable, or no batch could be planned — the
    scalar path needs no wrapper to stay correct.
    """
    width = 0
    if config is not None:
        vector = getattr(config, "vector", None)
        width = getattr(vector, "batch_width", 0) if vector else 0
    if width <= 0 or np is None:
        return runner
    batched = BatchRunner(
        kind=kind,
        tasks=tasks,
        inner=runner,
        batch_width=width,
        factory=factory,
        auditor=auditor,
        goldens=goldens,
        direct_only=direct_only,
        specs=specs,
        policies=policies,
        period_ticks=period_ticks,
    )
    if batched._kernel is None:
        batched.close()
        return runner
    return batched


def close_runner(runner: Any) -> None:
    """Release a wrapped runner's shared-memory segments (no-op for
    plain scalar runners)."""
    if isinstance(runner, BatchRunner):
        runner.close()
