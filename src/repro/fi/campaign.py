"""Fault-injection campaigns (paper Sections 5.3, 6.2 and 7).

Four campaign drivers:

* :class:`PermeabilityCampaign` — estimates every ``P^M_{i,k}`` of the
  system (Table 1): inject one bit flip into one module input per run,
  golden-run-compare the module's invocation stream, count *direct*
  first differences per output.
* :class:`DetectionCampaign` — the input error model comparison
  (Table 4): inject one bit flip into one system input signal per run
  and record which executable assertions detect it.
* :class:`MemoryCampaign` — the harsher error model (Fig. 3): inject a
  periodic bit flip (20 ms period) into one RAM or stack location per
  run, record detections and the failure verdict, and derive
  ``c_tot`` / ``c_fail`` / ``c_nofail`` per region for any EA set.
* :class:`RecoveryCampaign` — re-runs the memory error model with and
  without containment wrappers and compares failure verdicts.

Execution model
---------------
Every campaign separates into three phases: a serial *pre-draw* phase
that draws all random parameters from the campaign RNG in the exact
order the original single-loop drivers drew them, an *execution* phase
that maps a pure per-run function over the pre-drawn parameter list
through a :class:`~repro.fi.executor.CampaignExecutor` (serially or on
a process pool), and a serial *aggregation* phase that folds results
in task order.  Campaigns are therefore deterministic given their
seed, **bit-identical between serial and parallel execution**, and
every run is a fresh simulator instance (no state leaks between
runs).  Golden runs are shared through the process-wide
:data:`~repro.fi.executor.golden_cache`.

The sampled campaigns (permeability and detection) additionally
support **adaptive scheduling** (``config.adaptive``): the pre-drawn
task list is unchanged, but batches are dispatched per stratum through
an :class:`~repro.fi.adaptive.AdaptiveSampler`, which stops a stratum
as soon as its Wilson intervals certify the estimates (architectural
zero, saturated, or within the half-width target).  The enumerative
campaigns (memory and recovery) visit every (location, test case)
pair exactly once and ignore the adaptive options.

Campaigns accept either a bare simulator factory or a registered
:class:`~repro.targets.TargetSystem` (anything with a
``simulator_factory`` attribute); the shared execution options live in
a :class:`~repro.fi.executor.CampaignConfig` passed as ``config=``.
Explicit constructor arguments win over config values.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.edm.assertions import AssertionSpec
from repro.edm.monitors import MonitorBank
from repro.errors import CampaignError
from repro.fi.adaptive import (
    SKIPPED,
    AdaptiveSampler,
    AdaptiveStratum,
    StratumReport,
    stopping_rule_from,
)
from repro.fi.executor import (
    CampaignConfig,
    CampaignExecutor,
    CampaignTelemetry,
    TaskFailure,
    fingerprint_of,
    golden_cache,
)
from repro.fi.golden import (
    InvocationLog,
    SimulatorFactory,
    first_output_differences,
)
from repro.fi.integrity import (
    IntegrityViolation,
    RunAuditor,
    golden_sentinel,
)
from repro.fi.injector import FaultInjector
from repro.fi.memory import MemoryLocation, MemoryMap, Region
from repro.fi.models import (
    DEFAULT_PERIOD_TICKS,
    InputSignalFlip,
    ModuleInputFlip,
    PeriodicMemoryFlip,
)
from repro.fi.snapshot import FastForward
from repro.fi.vector import close_runner, wrap_runner
from repro.target.testcases import TestCase

__all__ = [
    "PermeabilityCampaign",
    "PermeabilityEstimate",
    "DetectionCampaign",
    "DetectionResult",
    "LatencyStats",
    "MemoryCampaign",
    "MemoryCampaignResult",
    "MemoryRunRecord",
    "CoverageTriple",
    "RecoveryCampaign",
    "RecoveryOutcome",
    "RecoveryResult",
]


# ======================================================================
# Shared constructor plumbing.
# ======================================================================
def _resolve_factory(factory) -> SimulatorFactory:
    """Accept a simulator factory or anything carrying one.

    A :class:`~repro.targets.TargetSystem` (or any object with a
    callable ``simulator_factory`` attribute) stands in for its
    factory, so campaigns can be pointed at a registered target
    directly.
    """
    if not callable(factory):
        simulator_factory = getattr(factory, "simulator_factory", None)
        if callable(simulator_factory):
            return simulator_factory
        raise CampaignError(
            f"factory must be callable or provide a simulator_factory, "
            f"got {factory!r}"
        )
    return factory


def _resolve_test_cases(
    factory,
    test_cases: Optional[Sequence[TestCase]],
    config: Optional[CampaignConfig],
) -> List[TestCase]:
    if test_cases is None and config is not None:
        test_cases = config.test_cases
    if test_cases is None and not callable(factory):
        default_cases = getattr(factory, "standard_test_cases", None)
        if callable(default_cases):
            test_cases = default_cases()
    if not test_cases:
        raise CampaignError("at least one test case is required")
    return list(test_cases)


def _resolve_seed(
    seed: Optional[int], config: Optional[CampaignConfig]
) -> int:
    if seed is not None:
        return seed
    return config.seed if config is not None else 2002


def _target_label(factory) -> str:
    name = getattr(factory, "name", None)
    if isinstance(name, str):
        return name
    return getattr(factory, "__qualname__", type(factory).__name__)


def _preload_tracks(
    ff: FastForward, tasks: Sequence[Tuple], case_of, tick_of
) -> None:
    """Record the checkpoint tracks a task list will need, up front.

    Runs in the campaign's serial pre-draw phase — before the process
    pool forks — so workers inherit the tracks through copy-on-write
    instead of each recording their own.
    """
    needed: Dict[int, Any] = {}
    for task in tasks:
        if ff.wants_track(tick_of(task)):
            test_case = case_of(task)
            needed.setdefault(test_case.case_id, test_case)
    ff.preload(list(needed.values()))


def _collect_failures(results: Sequence[Any]) -> List[TaskFailure]:
    """The quarantined tasks of an executor result list.

    Aggregation loops skip :class:`TaskFailure` entries (a quarantined
    run contributes no observation — it is neither an active error nor
    an inactive one) and surface them on the campaign result, so a
    faulty campaign completes with the surviving runs while the losses
    stay accounted for.  With no faults the list is empty and results
    are bit-identical to a serial run.
    """
    return [r for r in results if isinstance(r, TaskFailure)]


# ======================================================================
# Permeability estimation (Table 1).
# ======================================================================
@dataclass
class PermeabilityEstimate:
    """Raw counts and derived estimates for all pairs of one system."""

    #: (module, in_port, out_port) -> direct-error count
    direct_counts: Dict[Tuple[str, str, str], int]
    #: (module, in_port) -> active (injected) run count
    active_runs: Dict[Tuple[str, str], int]
    #: (module, in_port, out_port) -> estimated permeability
    values: Dict[Tuple[str, str, str], float]
    #: quarantined runs (empty on a fault-free campaign)
    task_failures: List[TaskFailure] = field(default_factory=list)

    def value(self, module: str, in_port: str, out_port: str) -> float:
        try:
            return self.values[(module, in_port, out_port)]
        except KeyError:
            raise CampaignError(
                f"no permeability estimated for "
                f"{module}.{in_port}->{out_port}"
            ) from None


class PermeabilityCampaign:
    """Estimate error permeabilities by module-input fault injection.

    For each module input port, ``runs_per_input`` injection runs are
    performed, cycling over the test cases.  Each run flips one
    uniformly chosen bit of the input value at one uniformly chosen
    invocation within the golden run's duration.  Only *direct* output
    errors are counted (Section 5.3).
    """

    def __init__(
        self,
        factory: SimulatorFactory,
        test_cases: Optional[Sequence[TestCase]] = None,
        runs_per_input: int = 32,
        seed: Optional[int] = None,
        direct_only: bool = True,
        config: Optional[CampaignConfig] = None,
        modules: Optional[Sequence[str]] = None,
    ):
        """*direct_only* selects the paper's accounting (Section 5.3:
        count only direct output errors, excluding errors that left
        through another output and came back).  Setting it to False
        counts every first difference — the ablation of design
        decision D2 in DESIGN.md.

        *modules* restricts injection to the named modules (the
        compositional-reuse path of ``repro.place.cache``: only
        modules whose fingerprint changed are re-injected).  ``None``
        injects every module.  The restriction is part of the campaign
        fingerprint, so restricted and full campaigns never share
        checkpoints."""
        if runs_per_input <= 0:
            raise CampaignError(
                f"runs_per_input must be positive, got {runs_per_input}"
            )
        self.factory = _resolve_factory(factory)
        self.test_cases = _resolve_test_cases(factory, test_cases, config)
        self.runs_per_input = runs_per_input
        self.seed = _resolve_seed(seed, config)
        self.rng = random.Random(self.seed)
        self.direct_only = direct_only
        self.modules = tuple(modules) if modules is not None else None
        self.config = config
        self.goldens = golden_cache.store_for(
            _target_label(factory), self.factory
        )
        self._ff = FastForward(
            self.factory, _target_label(factory), config=config,
        )
        self.telemetry: Optional[CampaignTelemetry] = None
        self.integrity_violations: List[IntegrityViolation] = []
        #: per-stratum spend reports (adaptive campaigns only).
        self.stratum_reports: List[StratumReport] = []

    def _runs_budget(self) -> int:
        """Per-input budget: ``max_runs`` caps adaptive campaigns."""
        if (
            self.config is not None
            and self.config.adaptive
            and self.config.max_runs is not None
        ):
            return self.config.max_runs
        return self.runs_per_input

    def run(self) -> PermeabilityEstimate:
        executor = CampaignExecutor(self.config, campaign="permeability")
        probe = self.factory(self.test_cases[0])
        system = probe.system
        adaptive = self.config is not None and self.config.adaptive
        runs_budget = self._runs_budget()

        # Phase 1: pre-draw every random parameter in the legacy
        # serial loop order (module -> in_port -> run_index).  The
        # adaptive path pre-draws the identical full-budget list — a
        # stopped stratum simply never dispatches its tail.
        if self.modules is not None:
            known = {module.name for module in system.modules()}
            unknown = [m for m in self.modules if m not in known]
            if unknown:
                raise CampaignError(
                    f"unknown modules {unknown}; "
                    f"system has {sorted(known)}"
                )
        pair_keys: List[Tuple[str, str]] = []
        out_ports: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        tasks: List[Tuple[str, str, TestCase, int, int]] = []
        task_pair: List[Tuple[str, str]] = []
        for module in system.modules():
            if self.modules is not None and module.name not in self.modules:
                continue
            for in_port in module.inputs:
                key_in = (module.name, in_port)
                pair_keys.append(key_in)
                out_ports[key_in] = tuple(module.outputs)
                signal = system.signal_of_input(module.name, in_port)
                width = system.signal(signal).width
                for run_index in range(runs_budget):
                    test_case = self.test_cases[
                        run_index % len(self.test_cases)
                    ]
                    golden = self.goldens.get(test_case)
                    from_tick = self.rng.randrange(0, golden.completion_tick)
                    bit = self.rng.randrange(0, width)
                    tasks.append(
                        (module.name, in_port, test_case, from_tick, bit)
                    )
                    task_pair.append(key_in)
        _preload_tracks(
            self._ff, tasks, case_of=lambda t: t[2], tick_of=lambda t: t[3]
        )

        # Phase 2: execute the pure per-run function over the tasks;
        # a sampled audit replay re-checks fast-forwarded runs.
        auditor = RunAuditor(
            self._ff, self.config, campaign="permeability"
        )

        def runner(index: int) -> Optional[List[str]]:
            task = tasks[index]
            return auditor.run(
                index, lambda ff: self._one_run(*task, ff=ff)
            )

        # batch_width > 0: answer contiguous same-module task spans
        # from the vectorized core (bit-identical; see repro.fi.vector)
        runner = wrap_runner(
            "permeability", runner, tasks, self.config, self.factory,
            auditor=auditor, goldens=self.goldens,
            direct_only=self.direct_only,
        )

        fingerprint_parts = [
            "permeability", system.name, self.seed,
            runs_budget, self.direct_only,
            [case.label for case in self.test_cases],
        ]
        if self.modules is not None:
            fingerprint_parts.append(sorted(self.modules))
        fingerprint = fingerprint_of(*fingerprint_parts)
        sentinel = golden_sentinel(self.factory, self.test_cases[0])
        if adaptive:
            strata = [
                AdaptiveStratum(
                    label=f"{key_in[0]}.{key_in[1]}",
                    indices=tuple(
                        range(i * runs_budget, (i + 1) * runs_budget)
                    ),
                )
                for i, key_in in enumerate(pair_keys)
            ]
            ports_of = {
                f"{key_in[0]}.{key_in[1]}": out_ports[key_in]
                for key_in in pair_keys
            }

            def counts_of(stratum, executed):
                active_n = 0
                hits_per_port = {port: 0 for port in ports_of[stratum.label]}
                for hits in executed:
                    if hits is None or isinstance(hits, TaskFailure):
                        continue
                    active_n += 1
                    for out_port in hits:
                        hits_per_port[out_port] += 1
                return {
                    port: (count, active_n)
                    for port, count in hits_per_port.items()
                }

            sampler = AdaptiveSampler(
                executor,
                strata,
                counts_of,
                rule=stopping_rule_from(self.config),
                min_batch=self.config.min_batch,
            )
            results = sampler.run(
                runner, len(tasks), fingerprint, sentinel=sentinel
            )
            self.telemetry = sampler.telemetry
            self.integrity_violations = list(sampler.violations)
            self.stratum_reports = list(sampler.reports)
        else:
            results = executor.run_tasks(
                runner, len(tasks), fingerprint, sentinel=sentinel
            )
            self.telemetry = executor.telemetry
            self.integrity_violations = list(executor.violations)
            self.stratum_reports = []
        executor.close()
        close_runner(runner)

        # Phase 3: aggregate in task order (== legacy loop order).
        direct: Dict[Tuple[str, str, str], int] = {}
        active: Dict[Tuple[str, str], int] = {}
        for key_in in pair_keys:
            active[key_in] = 0
            for out_port in out_ports[key_in]:
                direct[(key_in[0], key_in[1], out_port)] = 0
        for key_in, hits in zip(task_pair, results):
            if (
                hits is None
                or hits is SKIPPED
                or isinstance(hits, TaskFailure)
            ):
                continue
            active[key_in] += 1
            for out_port in hits:
                direct[(key_in[0], key_in[1], out_port)] += 1
        values = {
            (m, i, k): (
                direct[(m, i, k)] / active[(m, i)] if active[(m, i)] else 0.0
            )
            for (m, i, k) in direct
        }
        return PermeabilityEstimate(
            direct_counts=direct,
            active_runs=active,
            values=values,
            task_failures=_collect_failures(results),
        )

    def _one_run(
        self,
        module: str,
        in_port: str,
        test_case: TestCase,
        from_tick: int,
        bit: int,
        ff: Optional[FastForward] = None,
    ) -> Optional[List[str]]:
        """One injection run; returns output ports hit directly.

        ``None`` means the injection never became active (the flip was
        not applied before the run ended).  *ff* overrides the
        campaign's fast-forward handle (the audit replay passes a
        disabled twin to force a full run from tick 0).
        """
        golden = self.goldens.get(test_case)
        engine = ff if ff is not None else self._ff
        simulator, _, arm = engine.launch(test_case, from_tick)
        mod = simulator.system.module(module)
        injector = FaultInjector(
            ModuleInputFlip(module, in_port, from_tick, bit)
        ).attach(simulator)
        log = InvocationLog([module]).attach(simulator)
        # a fast-forwarded run never executed the prefix, so seed its
        # log with the golden invocations before the resume tick to
        # keep the lock-step comparison aligned
        log.prime(golden.invocations, simulator.executor.tick)
        arm(injector)
        result = simulator.run()
        if not injector.injected:
            return None
        completed = result.completion_tick
        if (
            completed is not None
            and injector.first_injection_tick is not None
            and injector.first_injection_tick > completed
        ):
            return None
        differences = first_output_differences(
            golden.invocations.stream(module),
            log.stream(module),
            mod.inputs,
            mod.outputs,
            in_port,
        )
        return [
            diff.out_port
            for diff in differences.values()
            if diff.direct or not self.direct_only
        ]


# ======================================================================
# Detection under the input error model (Table 4).
# ======================================================================
@dataclass(frozen=True)
class LatencyStats:
    """Detection-latency summary over a set of detections (in ticks)."""

    count: int
    mean: float
    median: float
    maximum: int

    @classmethod
    def from_samples(cls, samples: Sequence[int]) -> "LatencyStats":
        if not samples:
            return cls(0, 0.0, 0.0, 0)
        ordered = sorted(samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            median = float(ordered[mid])
        else:
            median = (ordered[mid - 1] + ordered[mid]) / 2.0
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            median=median,
            maximum=ordered[-1],
        )


@dataclass
class DetectionResult:
    """Outcome of one :class:`DetectionCampaign`.

    ``n_err`` counts *active* errors per targeted signal; per-EA
    detections only count firings at or after the injection tick.
    ``run_latencies`` records, for each detecting EA of each active
    run, the detection latency in ticks (first firing minus injection
    tick) — the second axis, besides coverage, on which EDM sets are
    compared in the literature (the paper's reference [18]).
    """

    targets: List[str]
    ea_names: List[str]
    n_injected: Dict[str, int]
    n_err: Dict[str, int]
    #: (target signal, ea name) -> detection count
    detections: Dict[Tuple[str, str], int]
    #: target signal -> runs where at least one EA of the bank fired
    any_detections: Dict[str, int]
    #: target signal -> per-run fired-EA name sets (for set coverages)
    run_records: Dict[str, List[frozenset]]
    #: target signal -> per-run {ea name -> latency in ticks}
    run_latencies: Dict[str, List[Dict[str, int]]] = field(
        default_factory=dict
    )
    #: quarantined runs (empty on a fault-free campaign)
    task_failures: List[TaskFailure] = field(default_factory=list)

    def latency_stats(
        self,
        target: Optional[str] = None,
        ea_subset: Optional[Iterable[str]] = None,
    ) -> LatencyStats:
        """Latency of the *first* detection per run, over the chosen
        targets and EA subset."""
        subset = frozenset(ea_subset) if ea_subset is not None else None
        samples: List[int] = []
        targets = [target] if target is not None else self.targets
        for name in targets:
            for per_run in self.run_latencies.get(name, []):
                relevant = [
                    latency
                    for ea, latency in per_run.items()
                    if subset is None or ea in subset
                ]
                if relevant:
                    samples.append(min(relevant))
        return LatencyStats.from_samples(samples)

    def coverage(self, target: str, ea_name: str) -> float:
        n = self.n_err.get(target, 0)
        return self.detections.get((target, ea_name), 0) / n if n else 0.0

    def total_coverage(
        self, target: str, ea_subset: Optional[Iterable[str]] = None
    ) -> float:
        """Combined coverage of an EA subset for one target signal."""
        n = self.n_err.get(target, 0)
        if not n:
            return 0.0
        if ea_subset is None:
            return self.any_detections.get(target, 0) / n
        subset = frozenset(ea_subset)
        hits = sum(
            1 for fired in self.run_records[target] if fired & subset
        )
        return hits / n

    def combined(
        self, ea_subset: Optional[Iterable[str]] = None
    ) -> Dict[str, float]:
        """Per-EA (or subset-total) coverage over *all* targets (row "All")."""
        total_err = sum(self.n_err.values())
        if not total_err:
            return {"total": 0.0}
        if ea_subset is None:
            per_ea = {
                ea: sum(
                    self.detections.get((t, ea), 0) for t in self.targets
                ) / total_err
                for ea in self.ea_names
            }
            per_ea["total"] = (
                sum(self.any_detections.values()) / total_err
            )
            return per_ea
        subset = frozenset(ea_subset)
        hits = sum(
            1
            for target in self.targets
            for fired in self.run_records[target]
            if fired & subset
        )
        return {"total": hits / total_err}


class DetectionCampaign:
    """Measure EA detection coverage for errors at the system inputs.

    Every run: one transient bit flip in one system input signal at a
    uniformly chosen tick within the golden run's duration; the full
    EA bank monitors passively, so any EA-set's coverage can be
    derived from one campaign.
    """

    def __init__(
        self,
        factory: SimulatorFactory,
        test_cases: Optional[Sequence[TestCase]] = None,
        assertion_specs: Sequence[AssertionSpec] = (),
        runs_per_signal: int = 80,
        targets: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
        config: Optional[CampaignConfig] = None,
    ):
        if runs_per_signal <= 0:
            raise CampaignError(
                f"runs_per_signal must be positive, got {runs_per_signal}"
            )
        self.factory = _resolve_factory(factory)
        self.test_cases = _resolve_test_cases(factory, test_cases, config)
        self.specs = list(assertion_specs)
        self.runs_per_signal = runs_per_signal
        self.targets = list(targets) if targets is not None else None
        self.seed = _resolve_seed(seed, config)
        self.rng = random.Random(self.seed)
        self.config = config
        self.goldens = golden_cache.store_for(
            _target_label(factory), self.factory
        )
        self._ff = FastForward(
            self.factory, _target_label(factory), config=config,
            bank_specs=self.specs,
        )
        self.telemetry: Optional[CampaignTelemetry] = None
        self.integrity_violations: List[IntegrityViolation] = []
        #: per-stratum spend reports (adaptive campaigns only).
        self.stratum_reports: List[StratumReport] = []

    def _runs_budget(self) -> int:
        """Per-signal budget: ``max_runs`` caps adaptive campaigns."""
        if (
            self.config is not None
            and self.config.adaptive
            and self.config.max_runs is not None
        ):
            return self.config.max_runs
        return self.runs_per_signal

    def run(self) -> DetectionResult:
        executor = CampaignExecutor(self.config, campaign="detection")
        probe = self.factory(self.test_cases[0])
        targets = (
            self.targets
            if self.targets is not None
            else probe.system.system_inputs()
        )
        ea_names = [spec.name for spec in self.specs]
        adaptive = self.config is not None and self.config.adaptive
        runs_budget = self._runs_budget()

        # Phase 1: pre-draw (target -> run_index), legacy order.
        tasks: List[Tuple[str, TestCase, int, int]] = []
        for target in targets:
            width = probe.system.signal(target).width
            for run_index in range(runs_budget):
                test_case = self.test_cases[run_index % len(self.test_cases)]
                golden = self.goldens.get(test_case)
                tick = self.rng.randrange(0, golden.completion_tick)
                bit = self.rng.randrange(0, width)
                tasks.append((target, test_case, tick, bit))
        _preload_tracks(
            self._ff, tasks, case_of=lambda t: t[1], tick_of=lambda t: t[2]
        )

        # Phase 2: execute, audit-replaying a sampled fraction.
        auditor = RunAuditor(self._ff, self.config, campaign="detection")

        def runner(index: int) -> Any:
            task = tasks[index]
            return auditor.run(
                index, lambda ff: self._one_run(*task, ff=ff)
            )

        # batch_width > 0: advance contiguous spans of injected runs
        # through the vectorized core (bit-identical; repro.fi.vector)
        runner = wrap_runner(
            "detection", runner, tasks, self.config, self.factory,
            auditor=auditor, specs=self.specs,
        )

        fingerprint = fingerprint_of(
            "detection", probe.system.name, self.seed,
            runs_budget, list(targets), ea_names,
            [case.label for case in self.test_cases],
        )
        sentinel = golden_sentinel(self.factory, self.test_cases[0])
        if adaptive:
            strata = [
                AdaptiveStratum(
                    label=target,
                    indices=tuple(
                        range(i * runs_budget, (i + 1) * runs_budget)
                    ),
                )
                for i, target in enumerate(targets)
            ]

            def counts_of(stratum, executed):
                # monitored proportion: any-EA detection coverage over
                # the *active* errors (dict outcomes) of the stratum
                active_n = 0
                detected = 0
                for outcome in executed:
                    if not isinstance(outcome, dict):
                        continue
                    active_n += 1
                    if outcome["fired"]:
                        detected += 1
                return {"coverage": (detected, active_n)}

            sampler = AdaptiveSampler(
                executor,
                strata,
                counts_of,
                rule=stopping_rule_from(self.config),
                min_batch=self.config.min_batch,
            )
            results = sampler.run(
                runner, len(tasks), fingerprint, sentinel=sentinel
            )
            self.telemetry = sampler.telemetry
            self.integrity_violations = list(sampler.violations)
            self.stratum_reports = list(sampler.reports)
        else:
            results = executor.run_tasks(
                runner, len(tasks), fingerprint, sentinel=sentinel
            )
            self.telemetry = executor.telemetry
            self.integrity_violations = list(executor.violations)
            self.stratum_reports = []
        executor.close()
        close_runner(runner)

        # Phase 3: aggregate in task order.
        n_injected: Dict[str, int] = {t: 0 for t in targets}
        n_err: Dict[str, int] = {t: 0 for t in targets}
        detections: Dict[Tuple[str, str], int] = {}
        any_detections: Dict[str, int] = {t: 0 for t in targets}
        run_records: Dict[str, List[frozenset]] = {t: [] for t in targets}
        run_latencies: Dict[str, List[Dict[str, int]]] = {
            t: [] for t in targets
        }
        for (target, _, _, _), outcome in zip(tasks, results):
            if outcome is SKIPPED or isinstance(outcome, TaskFailure):
                continue  # skipped or quarantined: no observation
            n_injected[target] += 1
            if not isinstance(outcome, dict):
                continue  # "inactive" / "late": injection not an error
            fired = frozenset(outcome["fired"])
            n_err[target] += 1
            run_records[target].append(fired)
            run_latencies[target].append(
                {ea: int(lat) for ea, lat in outcome["latencies"].items()}
            )
            if fired:
                any_detections[target] += 1
            for ea in fired:
                key = (target, ea)
                detections[key] = detections.get(key, 0) + 1
        return DetectionResult(
            targets=list(targets),
            ea_names=ea_names,
            n_injected=n_injected,
            n_err=n_err,
            detections=detections,
            any_detections=any_detections,
            run_records=run_records,
            run_latencies=run_latencies,
            task_failures=_collect_failures(results),
        )

    def _one_run(
        self,
        target: str,
        test_case: TestCase,
        tick: int,
        bit: int,
        ff: Optional[FastForward] = None,
    ) -> Any:
        """One injection run; JSON-encodable outcome.

        ``"inactive"``: flip never applied; ``"late"``: applied after
        completion (not an error); otherwise a dict with the fired EA
        names and their latencies.  *ff* overrides the campaign's
        fast-forward handle (the audit replay passes a disabled twin).
        """
        engine = ff if ff is not None else self._ff
        simulator, bank, arm = engine.launch(test_case, tick)
        injector = FaultInjector(
            InputSignalFlip(target, tick, bit)
        ).attach(simulator)
        arm(injector)
        result = simulator.run()
        if not injector.injected:
            return "inactive"
        completed = result.completion_tick
        if completed is not None and tick > completed:
            return "late"
        fired = sorted(bank.fired_eas(after_tick=tick))
        latencies: Dict[str, int] = {}
        for ea in fired:
            first = bank.state(ea).first_fire_tick
            if first is not None:
                latencies[ea] = first - tick
        return {"fired": fired, "latencies": latencies}


# ======================================================================
# The harsher, periodic memory error model (Fig. 3).
# ======================================================================
@dataclass(frozen=True)
class CoverageTriple:
    """The paper's Fig. 3 measures for one bar group."""

    c_tot: float
    c_fail: float
    c_nofail: float
    n_runs: int
    n_fail: int


@dataclass
class MemoryRunRecord:
    """One memory-model run: where, what fired, and the verdict."""

    region: Region
    location_label: str
    fired: frozenset
    failed: bool


@dataclass
class MemoryCampaignResult:
    """Outcome of one :class:`MemoryCampaign`."""

    records: List[MemoryRunRecord]
    ea_names: List[str]
    #: quarantined runs (empty on a fault-free campaign)
    task_failures: List[TaskFailure] = field(default_factory=list)

    def coverage(
        self,
        ea_subset: Iterable[str],
        region: Optional[Region] = None,
    ) -> CoverageTriple:
        """``c_tot`` / ``c_fail`` / ``c_nofail`` of an EA set.

        With *region* given, restrict to errors injected into that
        area (the RAM / Stack bar groups of Fig. 3); otherwise compute
        the Total group.
        """
        subset = frozenset(ea_subset)
        rows = [
            r for r in self.records
            if region is None or r.region is region
        ]
        if not rows:
            return CoverageTriple(0.0, 0.0, 0.0, 0, 0)
        fail_rows = [r for r in rows if r.failed]
        nofail_rows = [r for r in rows if not r.failed]

        def cov(selection: List[MemoryRunRecord]) -> float:
            if not selection:
                return 0.0
            return sum(1 for r in selection if r.fired & subset) / len(
                selection
            )

        return CoverageTriple(
            c_tot=cov(rows),
            c_fail=cov(fail_rows),
            c_nofail=cov(nofail_rows),
            n_runs=len(rows),
            n_fail=len(fail_rows),
        )


# ======================================================================
# Recovery (ERM) effectiveness under the memory error model.
# ======================================================================
@dataclass(frozen=True)
class RecoveryOutcome:
    """One location+test-case pair, run twice: detect-only vs wrapped."""

    region: Region
    location_label: str
    detected: bool
    baseline_failed: bool
    recovered_failed: bool
    recovery_actions: int


@dataclass
class RecoveryResult:
    """Outcome of one :class:`RecoveryCampaign`."""

    outcomes: List[RecoveryOutcome]
    #: quarantined runs (empty on a fault-free campaign)
    task_failures: List[TaskFailure] = field(default_factory=list)

    def failure_rate(
        self, with_recovery: bool, region: Optional[Region] = None
    ) -> float:
        rows = [
            o for o in self.outcomes
            if region is None or o.region is region
        ]
        if not rows:
            return 0.0
        failed = sum(
            1 for o in rows
            if (o.recovered_failed if with_recovery else o.baseline_failed)
        )
        return failed / len(rows)

    def failures_prevented(self, region: Optional[Region] = None) -> int:
        return sum(
            1 for o in self.outcomes
            if (region is None or o.region is region)
            and o.baseline_failed
            and not o.recovered_failed
        )

    def failures_introduced(self, region: Optional[Region] = None) -> int:
        """Runs where containment made things worse (possible: a
        recovery substitution is itself a disturbance)."""
        return sum(
            1 for o in self.outcomes
            if (region is None or o.region is region)
            and not o.baseline_failed
            and o.recovered_failed
        )


class RecoveryCampaign:
    """Measure the effect of containment wrappers (ERMs) at the
    EA-guarded signals under the harsher error model.

    Each (location, test case) pair runs twice with the identical
    injection train: once with a detect-only bank (the paper's
    experiments) and once with a :class:`RecoveringMonitorBank`; the
    failure verdicts are compared.

    The campaign enumerates its fault space exhaustively (one run per
    pair), so the adaptive-sampling options of
    :class:`~repro.fi.executor.CampaignConfig` do not apply and are
    ignored.
    """

    def __init__(
        self,
        factory: SimulatorFactory,
        test_cases: Optional[Sequence[TestCase]] = None,
        assertion_specs: Sequence[AssertionSpec] = (),
        locations: Optional[Sequence[MemoryLocation]] = None,
        period_ticks: int = DEFAULT_PERIOD_TICKS,
        seed: Optional[int] = None,
        policies=None,
        config: Optional[CampaignConfig] = None,
    ):
        self.factory = _resolve_factory(factory)
        self.test_cases = _resolve_test_cases(factory, test_cases, config)
        self.specs = list(assertion_specs)
        self.period_ticks = period_ticks
        self.seed = _resolve_seed(seed, config)
        self.policies = policies
        self.config = config
        self._locations = list(locations) if locations is not None else None
        self._target = _target_label(factory)
        self.telemetry: Optional[CampaignTelemetry] = None
        self.integrity_violations: List[IntegrityViolation] = []

    def run(self) -> RecoveryResult:
        executor = CampaignExecutor(self.config, campaign="recovery")
        probe = self.factory(self.test_cases[0])
        locations = (
            self._locations
            if self._locations is not None
            else MemoryMap(probe.system).locations()
        )
        rng = random.Random(self.seed)

        # Phase 1: pre-draw (location -> test case), legacy order.
        tasks: List[Tuple[MemoryLocation, TestCase, int, int]] = []
        for location in locations:
            for test_case in self.test_cases:
                bit = rng.randrange(0, location.valid_bits)
                phase = rng.randrange(0, self.period_ticks)
                tasks.append((location, test_case, bit, phase))

        # Phase 2: execute.
        def runner(index: int) -> Optional[Dict[str, Any]]:
            return self._one_run(*tasks[index])

        runner = wrap_runner(
            "recovery", runner, tasks, self.config, self.factory,
            specs=self.specs, policies=self.policies,
            period_ticks=self.period_ticks,
        )
        results = executor.run_tasks(
            runner,
            len(tasks),
            fingerprint_of(
                "recovery", probe.system.name, self.seed,
                self.period_ticks, [spec.name for spec in self.specs],
                [location.label for location in locations],
                [case.label for case in self.test_cases],
                self.policies,
            ),
            # no fast-forward (and so no audit replay) here, but the
            # drift sentinel still guards every pool worker
            sentinel=golden_sentinel(self.factory, self.test_cases[0]),
        )
        self.telemetry = executor.telemetry
        self.integrity_violations = list(executor.violations)
        executor.close()
        close_runner(runner)

        # Phase 3: aggregate in task order.
        outcomes: List[RecoveryOutcome] = []
        for (location, _, _, _), outcome in zip(tasks, results):
            if outcome is None or isinstance(outcome, TaskFailure):
                continue
            outcomes.append(
                RecoveryOutcome(
                    region=location.region,
                    location_label=location.label,
                    detected=bool(outcome["detected"]),
                    baseline_failed=bool(outcome["baseline_failed"]),
                    recovered_failed=bool(outcome["recovered_failed"]),
                    recovery_actions=int(outcome["recovery_actions"]),
                )
            )
        return RecoveryResult(
            outcomes=outcomes,
            task_failures=_collect_failures(results),
        )

    def _one_run(
        self,
        location: MemoryLocation,
        test_case: TestCase,
        bit: int,
        phase: int,
    ) -> Optional[Dict[str, Any]]:
        from repro.edm.recovery import RecoveringMonitorBank

        # no fast-forward here: the recovering bank rewrites store
        # values (the run is not a pure function of the golden prefix),
        # and the periodic injection starts within the first period
        # anyway, so there is no redundant prefix to skip
        spec = PeriodicMemoryFlip(
            location, bit,
            period_ticks=self.period_ticks, start_tick=phase,
        )

        baseline_sim = self.factory(test_case)
        baseline_sim.record_traces = False
        baseline_inj = FaultInjector(spec).attach(baseline_sim)
        baseline_bank = MonitorBank(self.specs).attach(baseline_sim)
        baseline = baseline_sim.run()

        wrapped_sim = self.factory(test_case)
        wrapped_sim.record_traces = False
        FaultInjector(spec).attach(wrapped_sim)
        wrapped_bank = RecoveringMonitorBank(
            self.specs, policies=self.policies
        ).attach(wrapped_sim)
        wrapped = wrapped_sim.run()

        if not baseline_inj.injected:
            return None
        return {
            "detected": bool(baseline_bank.fired_eas()),
            "baseline_failed": baseline.verdict.failed,
            "recovered_failed": wrapped.verdict.failed,
            "recovery_actions": wrapped_bank.recovery_count,
        }


class MemoryCampaign:
    """Periodic bit flips into RAM and stack locations (Section 7).

    Enumerates (a subset of) the memory map's locations; for each
    location, one run per test case with a random bit of the
    location's byte, flipped every ``period_ticks`` for the entire
    arrestment.  An error is detected if an EA fires at least once
    during the run.

    The campaign enumerates its fault space exhaustively (one run per
    (location, test case) pair), so the adaptive-sampling options of
    :class:`~repro.fi.executor.CampaignConfig` do not apply and are
    ignored.
    """

    def __init__(
        self,
        factory: SimulatorFactory,
        test_cases: Optional[Sequence[TestCase]] = None,
        assertion_specs: Sequence[AssertionSpec] = (),
        locations: Optional[Sequence[MemoryLocation]] = None,
        period_ticks: int = DEFAULT_PERIOD_TICKS,
        seed: Optional[int] = None,
        config: Optional[CampaignConfig] = None,
    ):
        self.factory = _resolve_factory(factory)
        self.test_cases = _resolve_test_cases(factory, test_cases, config)
        self.specs = list(assertion_specs)
        self.period_ticks = period_ticks
        self.seed = _resolve_seed(seed, config)
        self.rng = random.Random(self.seed)
        self.config = config
        self._locations = list(locations) if locations is not None else None
        # periodic flips never quiesce, so only the prefix before the
        # first period boundary can be skipped; with the default period
        # (20 ticks) every phase lands before the first checkpoint and
        # the engine stays entirely out of the way
        self._ff = FastForward(
            self.factory, _target_label(factory), config=config,
            bank_specs=self.specs, resync=False,
        )
        self.telemetry: Optional[CampaignTelemetry] = None
        self.integrity_violations: List[IntegrityViolation] = []

    def run(self) -> MemoryCampaignResult:
        executor = CampaignExecutor(self.config, campaign="memory")
        probe = self.factory(self.test_cases[0])
        locations = (
            self._locations
            if self._locations is not None
            else MemoryMap(probe.system).locations()
        )

        # Phase 1: pre-draw (location -> test case), legacy order.
        tasks: List[Tuple[MemoryLocation, TestCase, int, int]] = []
        for location in locations:
            for test_case in self.test_cases:
                bit = self.rng.randrange(0, location.valid_bits)
                # random phase within the period: the injection train
                # must not be systematically aligned with the slot
                # schedule, or flips into producer-rewritten stores
                # would always be overwritten before anyone reads them
                phase = self.rng.randrange(0, self.period_ticks)
                tasks.append((location, test_case, bit, phase))
        _preload_tracks(
            self._ff, tasks, case_of=lambda t: t[1], tick_of=lambda t: t[3]
        )

        # Phase 2: execute, audit-replaying a sampled fraction (only
        # runs that actually fast-forwarded are ever re-executed).
        auditor = RunAuditor(self._ff, self.config, campaign="memory")

        def runner(index: int) -> Optional[Dict[str, Any]]:
            task = tasks[index]
            return auditor.run(
                index, lambda ff: self._one_run(*task, ff=ff)
            )

        runner = wrap_runner(
            "memory", runner, tasks, self.config, self.factory,
            auditor=auditor, specs=self.specs,
            period_ticks=self.period_ticks,
        )
        results = executor.run_tasks(
            runner,
            len(tasks),
            fingerprint_of(
                "memory", probe.system.name, self.seed,
                self.period_ticks, [spec.name for spec in self.specs],
                [location.label for location in locations],
                [case.label for case in self.test_cases],
            ),
            sentinel=golden_sentinel(self.factory, self.test_cases[0]),
        )
        self.telemetry = executor.telemetry
        self.integrity_violations = list(executor.violations)
        executor.close()
        close_runner(runner)

        # Phase 3: aggregate in task order.
        records: List[MemoryRunRecord] = []
        for (location, _, _, _), outcome in zip(tasks, results):
            if outcome is None or isinstance(outcome, TaskFailure):
                continue
            records.append(
                MemoryRunRecord(
                    region=location.region,
                    location_label=location.label,
                    fired=frozenset(outcome["fired"]),
                    failed=bool(outcome["failed"]),
                )
            )
        return MemoryCampaignResult(
            records=records,
            ea_names=[spec.name for spec in self.specs],
            task_failures=_collect_failures(results),
        )

    def _one_run(
        self,
        location: MemoryLocation,
        test_case: TestCase,
        bit: int,
        phase: int,
        ff: Optional[FastForward] = None,
    ) -> Optional[Dict[str, Any]]:
        engine = ff if ff is not None else self._ff
        simulator, bank, _ = engine.launch(test_case, phase)
        injector = FaultInjector(
            PeriodicMemoryFlip(
                location,
                bit,
                period_ticks=self.period_ticks,
                start_tick=phase,
            )
        ).attach(simulator)
        result = simulator.run()
        if not injector.injected:
            return None
        return {
            "fired": sorted(bank.fired_eas()),
            "failed": result.verdict.failed,
        }
