"""Sequential-sampling (adaptive) campaign scheduling.

Fixed-n campaigns spend the same injection budget on every stratum,
although most strata are decided after a handful of samples: an
architectural-zero pair never shows a hit, a saturated pass-through
pair shows almost nothing else.  This module replaces the fixed-n
schedule with confidence-driven batching:

* the campaign driver pre-draws its **full** per-stratum budget in the
  exact legacy RNG order (so the task list is identical to a fixed-n
  campaign with that budget),
* the :class:`AdaptiveSampler` dispatches ``min_batch`` tasks per
  still-open stratum per round through the shared
  :class:`~repro.fi.executor.CampaignExecutor`,
* after each merged round it re-evaluates every stratum's monitored
  proportions against a :class:`StoppingRule` (Wilson intervals from
  :mod:`repro.analysis.intervals`) and closes strata that are decided:
  every proportion is certified an architectural zero, certified
  saturated, or estimated to within the half-width target,
* tasks of closed strata are never dispatched; their result slots hold
  the :data:`SKIPPED` sentinel, which campaign aggregation ignores.

Determinism and replay
----------------------
Stopping decisions are pure functions of the merged (and, when
checkpointing, digest-verified) results of each stratum's executed
prefix, evaluated in deterministic stratum order.  A resumed campaign
therefore replays the identical batch schedule and reaches the
identical decisions; and because the pre-drawn task list equals the
fixed-n list, an adaptive campaign with stopping disabled
(``ci_halfwidth=0``) executes every task and is bit-identical to the
fixed-n path on any backend.

Per-stratum spend, savings and stop reasons are recorded in
:class:`~repro.fi.executor.CampaignTelemetry` (``runs_saved``,
``stop_reasons``) and in the run-event log (``stratum_stop`` and
``adaptive_summary`` events).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.intervals import (
    certifies_saturation,
    certifies_zero,
    wilson_halfwidth,
)
from repro.errors import CampaignError
from repro.fi.executor import (
    CampaignConfig,
    CampaignExecutor,
    CampaignTelemetry,
    RunEventLog,
)
from repro.fi.integrity import IntegrityViolation

__all__ = [
    "SKIPPED",
    "AdaptiveStratum",
    "StoppingRule",
    "StratumReport",
    "AdaptiveSampler",
    "stopping_rule_from",
]


class _Skipped:
    """Singleton filling result slots of never-dispatched tasks."""

    _instance: Optional["_Skipped"] = None

    def __new__(cls) -> "_Skipped":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "SKIPPED"


#: result-slot marker for tasks an adaptive campaign never dispatched.
#: Distinct from ``None`` (an executed-but-inactive injection) so
#: aggregation loops can tell "no observation" from "not sampled".
SKIPPED = _Skipped()


@dataclass(frozen=True)
class AdaptiveStratum:
    """One sampling stratum: a label and its slice of the task space.

    *indices* must be the stratum's task indices in deterministic
    (pre-draw) order; the sampler dispatches prefixes of it.
    """

    label: str
    indices: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.indices:
            raise CampaignError(
                f"stratum {self.label!r} has no tasks"
            )


@dataclass(frozen=True)
class StoppingRule:
    """Interval-based stratum stopping criteria.

    A monitored proportion is *decided* when one of three certificates
    holds at confidence ``level``:

    ``zero``
        no success observed and the one-sided upper Wilson bound is at
        most ``zero_threshold`` — the pair is an architectural zero
        for every purpose the shape verdicts depend on;
    ``saturated``
        the one-sided lower Wilson bound is at least
        ``saturation_threshold`` — a saturated pass-through;
    ``halfwidth``
        the two-sided Wilson half-width is at most ``halfwidth`` —
        the estimate is simply precise enough.

    A stratum stops when **all** its monitored proportions are
    decided, or when its budget is exhausted.
    """

    level: float = 0.95
    halfwidth: float = 0.2
    zero_threshold: float = 0.3
    saturation_threshold: float = 0.6

    def classify(self, successes: int, n: int) -> Optional[str]:
        """The certificate deciding a proportion, or ``None``."""
        if n <= 0:
            return None
        if certifies_zero(successes, n, self.level, self.zero_threshold):
            return "zero"
        if certifies_saturation(
            successes, n, self.level, self.saturation_threshold
        ):
            return "saturated"
        if (
            self.halfwidth > 0.0
            and wilson_halfwidth(successes, n, self.level) <= self.halfwidth
        ):
            return "halfwidth"
        return None


def stopping_rule_from(config: CampaignConfig) -> Optional[StoppingRule]:
    """The stopping rule a config asks for; ``None`` = stopping off.

    ``ci_halfwidth == 0`` is the master off switch: the adaptive
    engine then schedules the full budget in batches, which is
    bit-identical to fixed-n scheduling (the A/B determinism
    contract).
    """
    if config.ci_halfwidth <= 0.0:
        return None
    return StoppingRule(
        level=config.ci_level,
        halfwidth=config.ci_halfwidth,
        zero_threshold=config.zero_threshold,
        saturation_threshold=config.saturation_threshold,
    )


@dataclass
class StratumReport:
    """Spend accounting of one stratum after its last round."""

    label: str
    budget: int
    spent: int
    stop_reason: str
    #: proportion name -> (successes, observations) at stop time
    counts: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: proportion name -> deciding certificate ("budget" if none)
    decisions: Dict[str, str] = field(default_factory=dict)

    @property
    def saved(self) -> int:
        return self.budget - self.spent

    def to_json(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "budget": self.budget,
            "spent": self.spent,
            "saved": self.saved,
            "stop_reason": self.stop_reason,
            "counts": {
                name: list(pair) for name, pair in self.counts.items()
            },
            "decisions": dict(self.decisions),
        }


class AdaptiveSampler:
    """Drives a campaign's executor with confidence-driven batches.

    *counts_of* maps ``(stratum, executed_results)`` — the results of
    the stratum's executed prefix, in task order — to the stratum's
    monitored proportions as ``{name: (successes, observations)}``.
    Quarantined tasks appear as :class:`TaskFailure` entries in
    *executed_results* and must be treated as "no observation" by the
    callback, exactly like the campaign's aggregation phase treats
    them.

    ``run()`` has the same contract as
    :meth:`~repro.fi.executor.CampaignExecutor.run_tasks` — a result
    list in task order — except that slots of never-dispatched tasks
    hold :data:`SKIPPED`.
    """

    def __init__(
        self,
        executor: CampaignExecutor,
        strata: Sequence[AdaptiveStratum],
        counts_of: Callable[
            [AdaptiveStratum, List[Any]], Dict[str, Tuple[int, int]]
        ],
        rule: Optional[StoppingRule],
        min_batch: int = 4,
    ):
        if not strata:
            raise CampaignError("adaptive sampling needs at least 1 stratum")
        if min_batch < 1:
            raise CampaignError(f"min_batch must be >= 1, got {min_batch}")
        self.executor = executor
        self.strata = list(strata)
        self.counts_of = counts_of
        self.rule = rule
        self.min_batch = min_batch
        #: per-stratum spend reports of the most recent run.
        self.reports: List[StratumReport] = []
        #: aggregated telemetry of the most recent run.
        self.telemetry: Optional[CampaignTelemetry] = None
        #: integrity violations accumulated over all rounds.
        self.violations: List[IntegrityViolation] = []

    # ------------------------------------------------------------------
    def _evaluate(
        self, stratum: AdaptiveStratum, executed: List[Any]
    ) -> Tuple[bool, Dict[str, Tuple[int, int]], Dict[str, str]]:
        """(decided, counts, per-proportion decisions) of a stratum."""
        counts = self.counts_of(stratum, executed)
        decisions: Dict[str, str] = {}
        if self.rule is None:
            return False, counts, decisions
        decided = True
        for name, (successes, n) in counts.items():
            verdict = self.rule.classify(successes, n)
            if verdict is None:
                decided = False
            else:
                decisions[name] = verdict
        return decided and bool(counts), counts, decisions

    @staticmethod
    def _stop_reason(decisions: Dict[str, str], decided: bool) -> str:
        if not decided:
            return "budget"
        reasons = set(decisions.values())
        if reasons == {"zero"}:
            return "zero"
        if reasons <= {"zero", "saturated"}:
            return "saturated"
        return "halfwidth"

    def _fold_round(
        self, aggregate: CampaignTelemetry, round_telemetry: CampaignTelemetry
    ) -> None:
        aggregate.executed_runs += round_telemetry.executed_runs
        aggregate.resumed_runs += round_telemetry.resumed_runs
        aggregate.wall_s += round_telemetry.wall_s
        aggregate.busy_s += round_telemetry.busy_s
        aggregate.retries += round_telemetry.retries
        aggregate.failures += round_telemetry.failures
        aggregate.timeouts += round_telemetry.timeouts
        aggregate.pool_respawns += round_telemetry.pool_respawns
        aggregate.degraded = aggregate.degraded or round_telemetry.degraded
        aggregate.ff_restores += round_telemetry.ff_restores
        aggregate.ff_resyncs += round_telemetry.ff_resyncs
        aggregate.ff_ticks_saved += round_telemetry.ff_ticks_saved
        aggregate.ff_tracks += round_telemetry.ff_tracks
        aggregate.audits += round_telemetry.audits
        aggregate.audit_mismatches += round_telemetry.audit_mismatches
        aggregate.audit_repairs += round_telemetry.audit_repairs
        aggregate.drift_events += round_telemetry.drift_events
        aggregate.checkpoint_rejects += round_telemetry.checkpoint_rejects
        # the executor's golden-cache counters are cumulative since its
        # construction, so the latest round's values already cover the
        # whole campaign
        aggregate.cache_hits = round_telemetry.cache_hits
        aggregate.cache_misses = round_telemetry.cache_misses
        # store statistics are cumulative over the executor's store
        # instance, which every round shares — assign, don't sum
        aggregate.store_backend = round_telemetry.store_backend
        aggregate.store_flushes = round_telemetry.store_flushes
        aggregate.store_flushes_skipped = (
            round_telemetry.store_flushes_skipped
        )
        aggregate.store_records_written = (
            round_telemetry.store_records_written
        )
        aggregate.store_bytes_written = round_telemetry.store_bytes_written

    # ------------------------------------------------------------------
    def run(
        self,
        runner: Callable[[int], Any],
        n_tasks: int,
        fingerprint: str = "",
        sentinel: Optional[Callable[[], str]] = None,
    ) -> List[Any]:
        """Batch-execute until every stratum stops; results in task
        order, with :data:`SKIPPED` in never-dispatched slots."""
        config = self.executor.config
        events = RunEventLog(
            config.event_log_path,
            self.executor.campaign,
            sink=self.executor.store,
        )
        results: List[Any] = [SKIPPED] * n_tasks
        cursor: Dict[str, int] = {s.label: 0 for s in self.strata}
        open_strata = list(self.strata)
        self.reports = []
        self.violations = []
        aggregate = CampaignTelemetry(
            campaign=self.executor.campaign,
            backend=config.resolved_backend(),
            jobs=config.jobs,
            total_runs=n_tasks,
            adaptive=True,
            strata=len(self.strata),
        )
        reports: Dict[str, StratumReport] = {}
        first_round = True
        try:
            while open_strata:
                batch: List[int] = []
                for stratum in open_strata:
                    at = cursor[stratum.label]
                    take = stratum.indices[at:at + self.min_batch]
                    cursor[stratum.label] = at + len(take)
                    batch.extend(take)
                round_results = self.executor.run_tasks(
                    runner,
                    n_tasks,
                    fingerprint,
                    sentinel=sentinel,
                    indices=batch,
                )
                for index, value in zip(batch, round_results):
                    results[index] = value
                round_telemetry = self.executor.telemetry
                if round_telemetry is not None:
                    if first_round:
                        # the first round's resolved backend is the
                        # representative one (later rounds may shrink
                        # below the pool-worthiness threshold)
                        aggregate.backend = round_telemetry.backend
                        aggregate.jobs = round_telemetry.jobs
                        first_round = False
                    self._fold_round(aggregate, round_telemetry)
                self.violations.extend(self.executor.violations)

                still_open: List[AdaptiveStratum] = []
                for stratum in open_strata:
                    spent = cursor[stratum.label]
                    executed = [
                        results[i] for i in stratum.indices[:spent]
                    ]
                    decided, counts, decisions = self._evaluate(
                        stratum, executed
                    )
                    exhausted = spent >= len(stratum.indices)
                    if not decided and not exhausted:
                        still_open.append(stratum)
                        continue
                    report = StratumReport(
                        label=stratum.label,
                        budget=len(stratum.indices),
                        spent=spent,
                        stop_reason=self._stop_reason(
                            decisions, decided
                        ),
                        counts=counts,
                        decisions={
                            name: decisions.get(name, "budget")
                            for name in counts
                        },
                    )
                    reports[stratum.label] = report
                    events.emit(
                        "stratum_stop",
                        stratum=report.label,
                        spent=report.spent,
                        budget=report.budget,
                        saved=report.saved,
                        reason=report.stop_reason,
                    )
                open_strata = still_open
        finally:
            # reports in deterministic stratum order, not stop order
            self.reports = [
                reports[s.label] for s in self.strata if s.label in reports
            ]
            aggregate.runs_saved = sum(r.saved for r in self.reports)
            aggregate.strata_early = sum(
                1 for r in self.reports if r.saved > 0
            )
            for report in self.reports:
                aggregate.stop_reasons[report.stop_reason] = (
                    aggregate.stop_reasons.get(report.stop_reason, 0) + 1
                )
            self.telemetry = aggregate
            events.emit(
                "adaptive_summary",
                strata=aggregate.strata,
                strata_early=aggregate.strata_early,
                runs_saved=aggregate.runs_saved,
                executed=aggregate.executed_runs,
                resumed=aggregate.resumed_runs,
                stop_reasons=dict(aggregate.stop_reasons),
            )
            events.close()
        return results
