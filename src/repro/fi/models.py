"""Error models (paper Sections 5.3, 6.2 and 7).

The paper uses single bit flips throughout but varies *where* and
*when* they strike — and shows (contribution C2) that this choice
materially changes which EDM placement is adequate:

* :class:`InputSignalFlip` — the "nice" model of Sections 5.3/6.2: one
  bit flip in one *system input signal* (a sensor register), at one
  point in time during the arrestment.
* :class:`ModuleInputFlip` — the variant used to *estimate
  permeability*: one bit flip in the value read by one *module input
  port* at one invocation (the paper injects "in the input signals of
  the modules").
* :class:`PeriodicMemoryFlip` — the harsher model of Section 7: a bit
  flip applied to one RAM or stack location periodically, every 20 ms,
  for the whole duration of the arrestment.

An error-model instance describes one *injection specification* for
one run; campaigns generate streams of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import InjectionError
from repro.fi.memory import MemoryLocation
from repro.target import constants as C

__all__ = [
    "InputSignalFlip",
    "ModuleInputFlip",
    "PeriodicMemoryFlip",
    "DEFAULT_PERIOD_TICKS",
]

#: Injection period of the harsher error model: 20 ms (Section 7).
DEFAULT_PERIOD_TICKS = int(0.020 / C.TICK_S)


@dataclass(frozen=True)
class InputSignalFlip:
    """One transient bit flip in a system input signal.

    The flip is applied to the signal's value right after the
    environment refreshes it at tick ``tick`` — modelling a noisy or
    faulty sensor disturbing exactly one sample.
    """

    signal: str
    tick: int
    bit: int

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise InjectionError(f"injection tick must be >= 0, got {self.tick}")
        if self.bit < 0:
            raise InjectionError(f"bit index must be >= 0, got {self.bit}")

    @property
    def label(self) -> str:
        return f"input:{self.signal}@t{self.tick}b{self.bit}"


@dataclass(frozen=True)
class ModuleInputFlip:
    """One transient bit flip in a module input port's read value.

    Applied when *module* marshals its arguments during its
    ``occurrence``-th invocation at or after tick ``from_tick`` —
    i.e. the corrupted value is what the module computes with, while
    the signal store itself stays intact, exactly like a transient
    read error.  Used for permeability estimation.
    """

    module: str
    port: str
    from_tick: int
    bit: int

    def __post_init__(self) -> None:
        if self.from_tick < 0:
            raise InjectionError(
                f"injection tick must be >= 0, got {self.from_tick}"
            )
        if self.bit < 0:
            raise InjectionError(f"bit index must be >= 0, got {self.bit}")

    @property
    def label(self) -> str:
        return f"arg:{self.module}.{self.port}@t{self.from_tick}b{self.bit}"


@dataclass(frozen=True)
class PeriodicMemoryFlip:
    """Periodic bit flips into one RAM or stack location (Section 7).

    Every ``period_ticks`` ticks the injector re-applies a flip of bit
    ``bit_in_byte`` of the location's byte.  For RAM locations the
    flip hits the variable between invocations; for stack locations it
    arms a corruption that strikes the owning module's next argument
    marshaling or local write (a corrupted stack slot is consumed when
    the frame is live).
    """

    location: MemoryLocation
    bit_in_byte: int
    period_ticks: int = DEFAULT_PERIOD_TICKS
    start_tick: int = 0

    def __post_init__(self) -> None:
        if self.period_ticks <= 0:
            raise InjectionError(
                f"injection period must be positive, got {self.period_ticks}"
            )
        if not 0 <= self.bit_in_byte < self.location.valid_bits:
            raise InjectionError(
                f"bit {self.bit_in_byte} invalid for location "
                f"{self.location.label}"
            )
        if self.start_tick < 0:
            raise InjectionError(
                f"start tick must be >= 0, got {self.start_tick}"
            )

    @property
    def label(self) -> str:
        return (
            f"mem:{self.location.label}b{self.bit_in_byte}"
            f"/p{self.period_ticks}"
        )
