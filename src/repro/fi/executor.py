"""Parallel, cache-aware campaign execution engine.

Fault-injection campaigns are embarrassingly parallel: thousands of
single-flip runs, each a fresh simulator, sharing nothing but the
golden runs.  This module factors the execution strategy out of the
campaign drivers:

* :class:`CampaignConfig` — the shared campaign configuration (seed,
  test cases, worker count, backend, checkpoint path), accepted
  uniformly by all campaign drivers.
* :class:`CampaignExecutor` — maps a pure per-task function over a
  pre-drawn task list, serially or on a fork-based process pool,
  with checkpoint/resume to disk and per-campaign telemetry.
* :class:`GoldenRunCache` — process-wide golden-run cache keyed by
  (target, test case, factory), with single-flight semantics so a
  golden run is computed exactly once no matter how many campaigns
  (or concurrent callers) ask for it.

Determinism contract
--------------------
Campaigns draw **all** random parameters up front, in the exact order
the legacy serial loops drew them, and hand the executor a list of
pure tasks.  Tasks may complete in any order; results are aggregated
in task order.  Parallel execution is therefore bit-identical to
serial execution for the same seed.

Checkpoint format
-----------------
A JSON document ``{campaign, fingerprint, n_tasks, results}`` where
``results`` maps task index to the task's JSON-encodable result.  A
resume run with a matching fingerprint replays the stored results and
executes only the missing tasks; a mismatched fingerprint (different
seed, scale, or target) discards the checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import CampaignError
from repro.fi.golden import GoldenRun, GoldenRunStore

__all__ = [
    "BACKENDS",
    "CampaignConfig",
    "CampaignTelemetry",
    "CampaignExecutor",
    "GoldenRunCache",
    "golden_cache",
    "fingerprint_of",
]

BACKENDS = ("serial", "process")


# ======================================================================
# Configuration.
# ======================================================================
@dataclass
class CampaignConfig:
    """Shared configuration accepted by every campaign driver.

    Campaign-specific workload knobs (``runs_per_input``, assertion
    specs, memory locations) remain constructor arguments of the
    individual drivers; this dataclass carries what is common to all
    of them.  Explicit constructor arguments win over config values.
    """

    #: campaign RNG seed (the paper's campaigns use 2002).
    seed: int = 2002
    #: test cases to cycle over; ``None`` = the driver's own default.
    test_cases: Optional[Sequence[Any]] = None
    #: worker processes; 1 = serial execution.
    jobs: int = 1
    #: ``"serial"`` or ``"process"``; ``None`` selects from ``jobs``.
    backend: Optional[str] = None
    #: checkpoint file; ``None`` disables checkpointing.
    checkpoint_path: Optional[str] = None
    #: flush the checkpoint every this many completed tasks.
    checkpoint_every: int = 32

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {self.jobs}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise CampaignError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.checkpoint_every < 1:
            raise CampaignError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )

    def resolved_backend(self) -> str:
        if self.backend is not None:
            return self.backend
        return "process" if self.jobs > 1 else "serial"


def fingerprint_of(*parts: Any) -> str:
    """Stable fingerprint of a campaign's identity for checkpointing."""
    blob = json.dumps([str(p) for p in parts], separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ======================================================================
# Telemetry.
# ======================================================================
@dataclass
class CampaignTelemetry:
    """Execution statistics of one campaign run."""

    campaign: str
    backend: str
    jobs: int
    total_runs: int = 0
    executed_runs: int = 0
    resumed_runs: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def runs_per_sec(self) -> float:
        return self.executed_runs / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker capacity spent inside tasks."""
        capacity = self.wall_s * self.jobs
        return min(1.0, self.busy_s / capacity) if capacity > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def render(self) -> str:
        return (
            f"[{self.campaign}] {self.executed_runs}/{self.total_runs} runs"
            f" ({self.resumed_runs} resumed) in {self.wall_s:.2f} s"
            f" | {self.runs_per_sec:.1f} runs/s"
            f" | backend={self.backend} jobs={self.jobs}"
            f" util={self.worker_utilization:.0%}"
            f" | golden cache {self.cache_hits} hit"
            f" / {self.cache_misses} miss"
            f" ({self.cache_hit_rate:.0%})"
        )


# ======================================================================
# Golden-run cache.
# ======================================================================
class GoldenRunCache:
    """Process-wide golden-run cache with single-flight computation.

    Keyed by ``(target name, factory, case id)``.  The factory object
    itself is part of the key — two factories building differently
    configured simulators of the same system never alias — and the
    cache holds a strong reference to it, so a key is never reused for
    a different configuration.  Entries persist for the life of the
    process, so every campaign of an experiment session (and every
    worker forked from it) reuses the same golden runs.
    """

    def __init__(self) -> None:
        self._runs: Dict[Tuple[str, int, int], GoldenRun] = {}
        self._flight: Dict[Tuple[str, int, int], threading.Lock] = {}
        self._stores: Dict[Tuple[str, int], GoldenRunStore] = {}
        self._factories: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def store_for(self, target: str, factory) -> "CachedGoldenStore":
        """A :class:`GoldenRunStore`-compatible view for one target."""
        return CachedGoldenStore(self, target, factory)

    def get(self, target: str, factory, test_case) -> GoldenRun:
        key = (target, id(factory), test_case.case_id)
        with self._lock:
            run = self._runs.get(key)
            if run is not None:
                self.hits += 1
                return run
            flight = self._flight.setdefault(key, threading.Lock())
        with flight:
            with self._lock:
                run = self._runs.get(key)
                if run is not None:
                    # someone else computed it while we waited
                    self.hits += 1
                    return run
                self._factories[id(factory)] = factory
                store = self._stores.setdefault(
                    (target, id(factory)), GoldenRunStore(factory)
                )
            run = store.get(test_case)
            with self._lock:
                self._runs[key] = run
                self.misses += 1
            return run

    def clear(self) -> None:
        with self._lock:
            self._runs.clear()
            self._flight.clear()
            self._stores.clear()
            self._factories.clear()
            self.hits = 0
            self.misses = 0


class CachedGoldenStore:
    """Adapter giving one (target, factory) pair the
    :class:`GoldenRunStore` interface over the shared cache."""

    def __init__(self, cache: GoldenRunCache, target: str, factory):
        self._cache = cache
        self.target = target
        self.factory = factory

    def get(self, test_case) -> GoldenRun:
        return self._cache.get(self.target, self.factory, test_case)


#: the default process-wide cache used by all campaign drivers.
golden_cache = GoldenRunCache()


# ======================================================================
# Worker-side trampoline for the fork pool.
#
# The active runner is published as a module global *before* the pool
# is forked; workers inherit it through the fork and only task indices
# (and JSON-encodable results) ever cross the pipe.  This keeps
# factories, simulators and closures out of pickle entirely.
# ======================================================================
_ACTIVE_RUNNER: Optional[Callable[[int], Any]] = None


def _pool_task(index: int) -> Tuple[int, Any, float]:
    started = time.perf_counter()
    result = _ACTIVE_RUNNER(index)  # type: ignore[misc]
    return index, result, time.perf_counter() - started


# ======================================================================
# The executor.
# ======================================================================
class CampaignExecutor:
    """Maps a pure task function over a task list, with checkpointing.

    ``runner(index)`` must be a pure function of the pre-drawn task
    parameters at ``index`` (no shared RNG, no mutation of campaign
    state) and must return a JSON-encodable value when checkpointing
    is enabled.  Results are returned in task order regardless of the
    completion order, so parallel execution is bit-identical to
    serial.
    """

    def __init__(
        self,
        config: Optional[CampaignConfig] = None,
        campaign: str = "campaign",
        cache: Optional[GoldenRunCache] = None,
    ):
        self.config = config or CampaignConfig()
        self.campaign = campaign
        self.cache = cache if cache is not None else golden_cache
        #: telemetry of the most recent :meth:`run_tasks` call.
        self.telemetry: Optional[CampaignTelemetry] = None
        # cache stats count from executor construction, so golden runs
        # fetched while the campaign pre-draws its parameters show up
        self._cache_hits0 = self.cache.hits
        self._cache_misses0 = self.cache.misses

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------
    def _load_checkpoint(
        self, fingerprint: str, n_tasks: int
    ) -> Dict[int, Any]:
        path = self.config.checkpoint_path
        if not path or not os.path.exists(path):
            return {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        if (
            payload.get("campaign") != self.campaign
            or payload.get("fingerprint") != fingerprint
            or payload.get("n_tasks") != n_tasks
        ):
            return {}
        return {
            int(index): result
            for index, result in payload.get("results", {}).items()
            if 0 <= int(index) < n_tasks
        }

    def _flush_checkpoint(
        self, fingerprint: str, n_tasks: int, done: Dict[int, Any]
    ) -> None:
        path = self.config.checkpoint_path
        if not path:
            return
        payload = {
            "campaign": self.campaign,
            "fingerprint": fingerprint,
            "n_tasks": n_tasks,
            "results": {str(index): result for index, result in done.items()},
        }
        tmp = f"{path}.tmp"
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        runner: Callable[[int], Any],
        n_tasks: int,
        fingerprint: str = "",
    ) -> List[Any]:
        """Execute ``runner`` over ``range(n_tasks)``; results in order."""
        config = self.config
        backend = config.resolved_backend()
        if backend == "process" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            backend = "serial"  # no fork on this platform
        telemetry = CampaignTelemetry(
            campaign=self.campaign,
            backend=backend,
            jobs=config.jobs if backend == "process" else 1,
            total_runs=n_tasks,
        )
        done = self._load_checkpoint(fingerprint, n_tasks)
        telemetry.resumed_runs = len(done)
        pending = [i for i in range(n_tasks) if i not in done]
        checkpointing = bool(config.checkpoint_path)
        since_flush = 0
        started = time.perf_counter()

        def account(index: int, result: Any, busy: float) -> None:
            nonlocal since_flush
            done[index] = result
            telemetry.executed_runs += 1
            telemetry.busy_s += busy
            since_flush += 1
            if checkpointing and since_flush >= config.checkpoint_every:
                self._flush_checkpoint(fingerprint, n_tasks, done)
                since_flush = 0

        if backend == "process" and len(pending) > 1:
            global _ACTIVE_RUNNER
            context = multiprocessing.get_context("fork")
            chunksize = max(1, len(pending) // (config.jobs * 8))
            _ACTIVE_RUNNER = runner
            try:
                with context.Pool(processes=config.jobs) as pool:
                    for index, result, busy in pool.imap_unordered(
                        _pool_task, pending, chunksize=chunksize
                    ):
                        account(index, result, busy)
            finally:
                _ACTIVE_RUNNER = None
        else:
            for index in pending:
                task_start = time.perf_counter()
                result = runner(index)
                account(index, result, time.perf_counter() - task_start)

        telemetry.wall_s = time.perf_counter() - started
        telemetry.cache_hits = self.cache.hits - self._cache_hits0
        telemetry.cache_misses = self.cache.misses - self._cache_misses0
        if checkpointing:
            self._flush_checkpoint(fingerprint, n_tasks, done)
        self.telemetry = telemetry
        return [done[index] for index in range(n_tasks)]
