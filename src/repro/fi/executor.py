"""Parallel, cache-aware, fault-tolerant campaign execution engine.

Fault-injection campaigns are embarrassingly parallel: thousands of
single-flip runs, each a fresh simulator, sharing nothing but the
golden runs.  This module factors the execution strategy out of the
campaign drivers:

* :class:`CampaignConfig` — the shared campaign configuration (seed,
  test cases, worker count, backend, checkpointing, fault-tolerance
  knobs), accepted uniformly by all campaign drivers.
* :class:`CampaignExecutor` — maps a pure per-task function over a
  pre-drawn task list, serially or on a fork-based process pool,
  with checkpoint/resume to disk, per-campaign telemetry, and a
  fault-tolerance layer (per-task timeout, bounded retry with
  exponential backoff, poison-task quarantine, broken-pool respawn,
  graceful degradation to serial execution).
* :class:`TaskFailure` — the structured record of a quarantined task;
  it takes the task's slot in the result list and in the checkpoint
  instead of aborting the campaign.
* :class:`RunEventLog` — an append-only JSONL log of run events (task
  finish/retry/failure, checkpoint flushes, pool respawns) for
  post-hoc campaign forensics.
* :class:`GoldenRunCache` — process-wide golden-run cache keyed by
  (target, test case, factory), with single-flight semantics and
  bounded LRU eviction, so a golden run is computed exactly once no
  matter how many campaigns (or concurrent callers) ask for it and
  long sessions over many targets do not grow without bound.

Determinism contract
--------------------
Campaigns draw **all** random parameters up front, in the exact order
the legacy serial loops drew them, and hand the executor a list of
pure tasks.  Tasks may complete in any order; results are aggregated
in task order.  Parallel execution is therefore bit-identical to
serial execution for the same seed.  Retries re-run the same pure
task, so a fault-free campaign (no retries, no quarantines) remains
bit-identical across backends; a faulty one is deterministic up to
which tasks were quarantined.

Failure handling
----------------
``runner(index)`` raising, timing out, or taking its worker process
down no longer aborts the campaign.  Each task gets ``retries + 1``
attempts (with exponential backoff between attempts); a task that
exhausts its budget is *quarantined*: a :class:`TaskFailure` is
recorded in its result slot and in the checkpoint, and the campaign
completes with the surviving runs.  A worker death (or a wedged pool)
is detected by a result watchdog; the pool is terminated, respawned
(at most ``max_pool_respawns`` times) and the in-flight tasks are
re-dispatched.  When the pool cannot be rebuilt, execution degrades
to the serial backend for the remaining tasks.  The checkpoint is
flushed on **every** exit path — success, exception and
KeyboardInterrupt — so no completed run is ever lost.

Checkpoint format
-----------------
A JSON document ``{campaign, fingerprint, n_tasks, results, digests}``
where ``results`` maps task index to the task's JSON-encodable result
(or an encoded :class:`TaskFailure` for quarantined tasks) and
``digests`` maps the same indices to each record's canonical content
digest (:func:`~repro.fi.integrity.canonical_digest`).  A resume run
with a matching fingerprint replays the stored results and executes
only the missing tasks; a mismatched fingerprint — or a structurally
corrupt checkpoint — discards the checkpoint instead of crashing.
Records whose digest does not verify are handled per the integrity
policy: dropped and re-executed (``repair``, the default), fatal
(``strict``), or accepted unverified (``off``).  Pre-digest
checkpoints (no ``digests`` map) still load.

Result integrity
----------------
The executor carries the runtime self-checking layer of
:mod:`repro.fi.integrity`: per-record checkpoint digests (above),
sampled audit replay (campaign drivers wrap their task function in a
:class:`~repro.fi.integrity.RunAuditor`; the executor ships audit
counters and :class:`~repro.fi.integrity.IntegrityViolation` records
home from pool workers in-band), and worker drift sentinels — before
dispatching tasks to a fresh pool, every worker digests a locally
computed golden run and the parent compares the digests against its
own, treating any divergence as a broken pool (respawn, then degrade
to serial).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import signal
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from dataclasses import field as dataclasses_field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import CampaignError, IntegrityError
from repro.fi.golden import GoldenRun, GoldenRunStore
from repro.fi.integrity import (
    POLICIES,
    IntegrityViolation,
    canonical_digest,
    drain_violations,
    integrity_stats,
)
from repro.fi.snapshot import DEFAULT_CHECKPOINT_STRIDE, ff_stats

__all__ = [
    "BACKENDS",
    "CHECKPOINT_SCHEMA_REVISION",
    "CampaignConfig",
    "CampaignTelemetry",
    "CampaignExecutor",
    "GoldenRunCache",
    "RunEventLog",
    "TaskFailure",
    "golden_cache",
    "fingerprint_of",
]

BACKENDS = ("serial", "process")

#: bumped whenever the checkpoint document layout changes; salted into
#: every fingerprint so old files mismatch instead of half-loading.
CHECKPOINT_SCHEMA_REVISION = 2

#: watchdog on pool results when no per-task timeout is configured: if
#: *no* result arrives for this long, the pool is considered broken.
DEFAULT_POOL_WATCHDOG_S = 300.0

#: upper bound on one exponential-backoff sleep between attempts.
MAX_BACKOFF_S = 30.0


# ======================================================================
# Configuration.
# ======================================================================
@dataclass
class CampaignConfig:
    """Shared configuration accepted by every campaign driver.

    Campaign-specific workload knobs (``runs_per_input``, assertion
    specs, memory locations) remain constructor arguments of the
    individual drivers; this dataclass carries what is common to all
    of them.  Explicit constructor arguments win over config values.
    """

    #: campaign RNG seed (the paper's campaigns use 2002).
    seed: int = 2002
    #: test cases to cycle over; ``None`` = the driver's own default.
    test_cases: Optional[Sequence[Any]] = None
    #: worker processes; 1 = serial execution.
    jobs: int = 1
    #: ``"serial"`` or ``"process"``; ``None`` selects from ``jobs``.
    backend: Optional[str] = None
    #: checkpoint file; ``None`` disables checkpointing.
    checkpoint_path: Optional[str] = None
    #: flush the checkpoint every this many completed tasks.
    checkpoint_every: int = 32
    #: per-task wall-clock budget in seconds; ``None`` = unlimited.
    task_timeout: Optional[float] = None
    #: extra attempts per task before quarantine (total = retries + 1).
    retries: int = 1
    #: base of the exponential backoff between attempts, in seconds.
    retry_backoff_s: float = 0.25
    #: pool rebuilds tolerated before degrading to serial execution.
    max_pool_respawns: int = 2
    #: stall watchdog on pool results; ``None`` derives it from
    #: ``task_timeout`` (or :data:`DEFAULT_POOL_WATCHDOG_S`).
    pool_watchdog_s: Optional[float] = None
    #: JSONL run-event log; ``None`` disables event logging.
    event_log_path: Optional[str] = None
    #: ticks between golden checkpoints for fast-forwarded runs.
    checkpoint_stride: int = DEFAULT_CHECKPOINT_STRIDE
    #: restore golden checkpoints instead of re-simulating the prefix
    #: (bit-identical either way; off = always simulate from tick 0).
    fast_forward: bool = True
    #: fraction of fast-forwarded runs re-executed full-length and
    #: field-diffed against the fast-forward result (0.0 = no audits).
    audit_fraction: float = 0.0
    #: seed of the deterministic audit sample; ``None`` uses ``seed``.
    audit_seed: Optional[int] = None
    #: ``"strict"`` (violations abort), ``"repair"`` (violations are
    #: healed from a trusted recomputation) or ``"off"`` (no
    #: verification: no checkpoint digest checks, audits or sentinels).
    integrity_policy: str = "repair"
    #: confidence-driven sequential sampling: campaigns that support
    #: stratified estimation (permeability, detection) dispatch batches
    #: per stratum and stop early once the interval targets below are
    #: met.  Campaigns that enumerate their fault space (memory,
    #: recovery) ignore the flag.
    adaptive: bool = False
    #: confidence level of the stopping intervals and bounds.
    ci_level: float = 0.95
    #: two-sided Wilson half-width at which a stratum's estimate is
    #: precise enough to stop.  ``0`` disables early stopping entirely
    #: (the adaptive engine then runs the full budget in batches and is
    #: bit-identical to fixed-n scheduling).
    ci_halfwidth: float = 0.2
    #: injections dispatched per stratum per adaptive round.
    min_batch: int = 4
    #: per-stratum injection budget for adaptive campaigns; ``None``
    #: uses the driver's fixed-n run count (``runs_per_input`` /
    #: ``runs_per_signal``).
    max_runs: Optional[int] = None
    #: one-sided upper bound below which an all-miss stratum pair is
    #: certified an architectural zero.
    zero_threshold: float = 0.3
    #: one-sided lower bound above which a pair is certified saturated.
    saturation_threshold: float = 0.6

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {self.jobs}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise CampaignError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.checkpoint_every < 1:
            raise CampaignError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise CampaignError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.retries < 0:
            raise CampaignError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff_s < 0:
            raise CampaignError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.max_pool_respawns < 0:
            raise CampaignError(
                f"max_pool_respawns must be >= 0, "
                f"got {self.max_pool_respawns}"
            )
        if self.pool_watchdog_s is not None and self.pool_watchdog_s <= 0:
            raise CampaignError(
                f"pool_watchdog_s must be positive, "
                f"got {self.pool_watchdog_s}"
            )
        if self.checkpoint_stride < 1:
            raise CampaignError(
                f"checkpoint_stride must be >= 1, "
                f"got {self.checkpoint_stride}"
            )
        if not 0.0 <= self.audit_fraction <= 1.0:
            raise CampaignError(
                f"audit_fraction must be within [0, 1], "
                f"got {self.audit_fraction}"
            )
        if self.integrity_policy not in POLICIES:
            raise CampaignError(
                f"unknown integrity policy {self.integrity_policy!r}; "
                f"choose from {POLICIES}"
            )
        if not 0.0 < self.ci_level < 1.0:
            raise CampaignError(
                f"ci_level must be within (0, 1), got {self.ci_level}"
            )
        if not 0.0 <= self.ci_halfwidth < 1.0:
            raise CampaignError(
                f"ci_halfwidth must be within [0, 1), "
                f"got {self.ci_halfwidth}"
            )
        if self.min_batch < 1:
            raise CampaignError(
                f"min_batch must be >= 1, got {self.min_batch}"
            )
        if self.max_runs is not None and self.max_runs < 1:
            raise CampaignError(
                f"max_runs must be >= 1, got {self.max_runs}"
            )
        if not 0.0 <= self.zero_threshold < 1.0:
            raise CampaignError(
                f"zero_threshold must be within [0, 1), "
                f"got {self.zero_threshold}"
            )
        if not 0.0 < self.saturation_threshold <= 1.0:
            raise CampaignError(
                f"saturation_threshold must be within (0, 1], "
                f"got {self.saturation_threshold}"
            )

    def resolved_backend(self) -> str:
        if self.backend is not None:
            return self.backend
        return "process" if self.jobs > 1 else "serial"

    def resolved_watchdog(self) -> float:
        """Seconds of result silence after which the pool is broken."""
        if self.pool_watchdog_s is not None:
            return self.pool_watchdog_s
        if self.task_timeout is not None:
            return self.task_timeout * 2 + 5.0
        return DEFAULT_POOL_WATCHDOG_S


def fingerprint_of(*parts: Any) -> str:
    """Stable fingerprint of a campaign's identity for checkpointing.

    The package version and the checkpoint schema revision are salted
    in: resuming a checkpoint written by different code is rejected as
    a fingerprint mismatch instead of silently merging stale results.
    """
    try:
        from repro import __version__ as version
    except Exception:  # pragma: no cover - the package always has one
        version = "unknown"
    salt = [f"repro={version}", f"schema={CHECKPOINT_SCHEMA_REVISION}"]
    blob = json.dumps(
        salt + [str(p) for p in parts], separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ======================================================================
# Structured task failure (poison-task quarantine).
# ======================================================================
_FAILURE_MARKER = "__task_failure__"


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its attempt budget and was quarantined.

    Takes the task's slot in the executor's result list (and in the
    checkpoint) instead of aborting the campaign; aggregation code
    skips these records and surfaces them as
    ``result.task_failures``.
    """

    #: task index within the campaign's pre-drawn task list.
    index: int
    #: ``"exception"``, ``"timeout"`` or ``"lost"`` (worker death).
    kind: str
    #: human-readable description of the last error.
    error: str
    #: attempts consumed before quarantine.
    attempts: int

    def to_json(self) -> Dict[str, Any]:
        return {
            _FAILURE_MARKER: 1,
            "index": self.index,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "TaskFailure":
        return cls(
            index=int(payload["index"]),
            kind=str(payload["kind"]),
            error=str(payload["error"]),
            attempts=int(payload["attempts"]),
        )

    @staticmethod
    def is_encoded(value: Any) -> bool:
        return isinstance(value, dict) and value.get(_FAILURE_MARKER) == 1


# ======================================================================
# Run-event log.
# ======================================================================
class RunEventLog:
    """Append-only JSONL log of campaign run events.

    One JSON object per line: ``{ts, campaign, event, ...fields}``.
    Event names: ``run_start``, ``task_start`` (serial backend only),
    ``task_finish``, ``task_error``, ``task_retry``, ``task_failure``
    (quarantine), ``checkpoint_flush``, ``pool_broken``,
    ``pool_respawn``, ``backend_degraded``, ``integrity_violation``,
    ``worker_drift``, ``run_end``.  With no path, every call is a
    no-op.

    Every record is flushed to the OS as it is written, so a crashed
    campaign's log ends at the event that preceded the death, not at
    an arbitrary buffer boundary.  Set ``REPRO_EVENT_LOG_FSYNC=1`` to
    additionally ``fsync`` per record — durable against power loss,
    at a per-event cost only forensics-critical runs should pay.
    """

    def __init__(self, path: Optional[str] = None, campaign: str = ""):
        self.path = path
        self.campaign = campaign
        self._handle = None
        self._fsync = os.environ.get("REPRO_EVENT_LOG_FSYNC") == "1"
        if path:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8")

    @property
    def enabled(self) -> bool:
        return self._handle is not None

    def emit(self, event: str, **fields: Any) -> None:
        if self._handle is None:
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 3),
            "campaign": self.campaign,
            "event": event,
        }
        record.update(fields)
        try:
            self._handle.write(
                json.dumps(record, separators=(",", ":"), default=str)
                + "\n"
            )
            self._handle.flush()
            if self._fsync:
                os.fsync(self._handle.fileno())
        except (OSError, ValueError):
            pass  # never let observability take the campaign down

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


# ======================================================================
# Telemetry.
# ======================================================================
@dataclass
class CampaignTelemetry:
    """Execution statistics of one campaign run."""

    campaign: str
    backend: str
    jobs: int
    total_runs: int = 0
    executed_runs: int = 0
    resumed_runs: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: re-dispatched attempts (a task retried twice counts twice).
    retries: int = 0
    #: quarantined tasks (structured :class:`TaskFailure` results).
    failures: int = 0
    #: attempts that exceeded the per-task timeout.
    timeouts: int = 0
    #: worker pools torn down and rebuilt after breakage.
    pool_respawns: int = 0
    #: True once the pool could not be rebuilt and the remaining
    #: tasks ran on the serial backend.
    degraded: bool = False
    #: injected runs started from a restored golden checkpoint.
    ff_restores: int = 0
    #: injected runs that reconverged with the golden run and exited
    #: early (suffix skipped).
    ff_resyncs: int = 0
    #: simulation ticks skipped by fast-forwarding (prefix + suffix).
    ff_ticks_saved: int = 0
    #: checkpoint tracks recorded (one extra golden-style run each).
    ff_tracks: int = 0
    #: sampled runs re-executed full-length for the audit replay.
    audits: int = 0
    #: audited runs whose full replay diverged from the fast-forward
    #: result (each one is a recorded :class:`IntegrityViolation`).
    audit_mismatches: int = 0
    #: mismatched runs healed by adopting the full-replay result.
    audit_repairs: int = 0
    #: pools torn down because a worker's golden digest diverged.
    drift_events: int = 0
    #: checkpoint records dropped on load after a digest mismatch.
    checkpoint_rejects: int = 0
    #: True when the run was scheduled by the adaptive sampler.
    adaptive: bool = False
    #: strata the adaptive sampler scheduled.
    strata: int = 0
    #: strata stopped before exhausting their injection budget.
    strata_early: int = 0
    #: pre-drawn injections never dispatched thanks to early stopping.
    runs_saved: int = 0
    #: stop reason -> stratum count (zero/saturated/halfwidth/budget).
    stop_reasons: Dict[str, int] = dataclasses_field(default_factory=dict)

    @property
    def runs_per_sec(self) -> float:
        return self.executed_runs / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker capacity spent inside tasks."""
        capacity = self.wall_s * self.jobs
        return min(1.0, self.busy_s / capacity) if capacity > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def faulted(self) -> bool:
        return bool(
            self.retries or self.failures or self.timeouts
            or self.pool_respawns or self.degraded
        )

    def render(self) -> str:
        text = (
            f"[{self.campaign}] {self.executed_runs}/{self.total_runs} runs"
            f" ({self.resumed_runs} resumed) in {self.wall_s:.2f} s"
            f" | {self.runs_per_sec:.1f} runs/s"
            f" | backend={self.backend} jobs={self.jobs}"
            f" util={self.worker_utilization:.0%}"
            f" | golden cache {self.cache_hits} hit"
            f" / {self.cache_misses} miss"
            f" ({self.cache_hit_rate:.0%})"
        )
        if self.ff_restores or self.ff_resyncs or self.ff_tracks:
            text += (
                f" | fast-forward {self.ff_ticks_saved} ticks saved"
                f" ({self.ff_restores} restores, {self.ff_resyncs} resyncs,"
                f" {self.ff_tracks} tracks)"
            )
        if (
            self.audits or self.audit_mismatches
            or self.drift_events or self.checkpoint_rejects
        ):
            text += (
                f" | integrity audits={self.audits}"
                f" mismatches={self.audit_mismatches}"
                f" repairs={self.audit_repairs}"
            )
            if self.drift_events:
                text += f" drift={self.drift_events}"
            if self.checkpoint_rejects:
                text += f" ckpt-rejects={self.checkpoint_rejects}"
        if self.adaptive:
            text += (
                f" | adaptive runs_saved={self.runs_saved}"
                f" ({self.strata_early}/{self.strata} strata early"
            )
            if self.stop_reasons:
                reasons = " ".join(
                    f"{reason}={count}"
                    for reason, count in sorted(self.stop_reasons.items())
                )
                text += f"; {reasons}"
            text += ")"
        if self.faulted:
            text += (
                f" | retries={self.retries} failures={self.failures}"
                f" timeouts={self.timeouts} respawns={self.pool_respawns}"
            )
            if self.degraded:
                text += " degraded=serial"
        return text


# ======================================================================
# Golden-run cache.
# ======================================================================
class GoldenRunCache:
    """Process-wide golden-run cache with single-flight computation.

    Keyed by ``(target name, factory, case id)``.  The factory object
    itself is part of the key — two factories building differently
    configured simulators of the same system never alias — and the
    cache holds a strong reference to it while any of its runs are
    cached, so a live key is never reused for a different
    configuration.

    The cache is bounded: at most ``max_runs`` golden runs are kept,
    evicted least-recently-used.  When a factory's last cached run is
    evicted, its store and the factory reference are dropped too, and
    single-flight locks are pruned as soon as their computation
    completes — long sessions over many targets stay bounded.
    """

    def __init__(self, max_runs: int = 512) -> None:
        if max_runs < 1:
            raise CampaignError(f"max_runs must be >= 1, got {max_runs}")
        self.max_runs = max_runs
        self._runs: "OrderedDict[Tuple[str, int, int], GoldenRun]" = (
            OrderedDict()
        )
        self._flight: Dict[Tuple[str, int, int], threading.Lock] = {}
        self._stores: Dict[Tuple[str, int], GoldenRunStore] = {}
        self._factories: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)

    def store_for(self, target: str, factory) -> "CachedGoldenStore":
        """A :class:`GoldenRunStore`-compatible view for one target."""
        return CachedGoldenStore(self, target, factory)

    def get(self, target: str, factory, test_case) -> GoldenRun:
        key = (target, id(factory), test_case.case_id)
        with self._lock:
            run = self._runs.get(key)
            if run is not None:
                self._runs.move_to_end(key)
                self.hits += 1
                return run
            flight = self._flight.setdefault(key, threading.Lock())
        with flight:
            with self._lock:
                run = self._runs.get(key)
                if run is not None:
                    # someone else computed it while we waited
                    self._runs.move_to_end(key)
                    self._flight.pop(key, None)
                    self.hits += 1
                    return run
                self._factories[id(factory)] = factory
                store = self._stores.setdefault(
                    (target, id(factory)), GoldenRunStore(factory)
                )
            run = store.get(test_case)
            with self._lock:
                self._runs[key] = run
                self.misses += 1
                self._flight.pop(key, None)
                self._evict_locked()
            return run

    def _evict_locked(self) -> None:
        """Drop LRU runs beyond the bound; GC orphaned stores/factories."""
        while len(self._runs) > self.max_runs:
            (target, factory_id, _), _ = self._runs.popitem(last=False)
            if not any(
                k[0] == target and k[1] == factory_id for k in self._runs
            ):
                self._stores.pop((target, factory_id), None)
            if not any(k[1] == factory_id for k in self._runs):
                self._factories.pop(factory_id, None)

    def clear(self) -> None:
        with self._lock:
            self._runs.clear()
            self._flight.clear()
            self._stores.clear()
            self._factories.clear()
            self.hits = 0
            self.misses = 0


class CachedGoldenStore:
    """Adapter giving one (target, factory) pair the
    :class:`GoldenRunStore` interface over the shared cache."""

    def __init__(self, cache: GoldenRunCache, target: str, factory):
        self._cache = cache
        self.target = target
        self.factory = factory

    def get(self, test_case) -> GoldenRun:
        return self._cache.get(self.target, self.factory, test_case)


#: the default process-wide cache used by all campaign drivers.
golden_cache = GoldenRunCache()


# ======================================================================
# Worker-side trampoline for the fork pool.
#
# The active runner (and the fault-tolerance knobs) are published as
# module globals *before* the pool is forked; workers inherit them
# through the fork and only (index, attempt) pairs and JSON-encodable
# payloads ever cross the pipe.  This keeps factories, simulators and
# closures out of pickle entirely.  Worker exceptions are converted to
# in-band error payloads, so anything escaping the result iterator is
# pool infrastructure breakage, not a task failure.
# ======================================================================
_ACTIVE_RUNNER: Optional[Callable[[int], Any]] = None
_ACTIVE_TIMEOUT: Optional[float] = None
#: (fail_index, kill_index) chaos hooks; see ``_chaos_from_env``.
_ACTIVE_CHAOS: Tuple[Optional[int], Optional[int]] = (None, None)
#: the drift sentinel published before the pool forks: a callable
#: computing a fresh golden-run digest, and the parent's own digest.
_ACTIVE_SENTINEL: Optional[Tuple[Callable[[], str], str]] = None


class _TaskTimeout(Exception):
    """Raised inside a task when its wall-clock budget expires."""


def _chaos_from_env() -> Tuple[Optional[int], Optional[int]]:
    """Test-only fault hooks, read from the environment.

    ``REPRO_CHAOS_FAIL_INDEX=N`` makes the first attempt of task N
    raise; ``REPRO_CHAOS_KILL_INDEX=N`` makes the first attempt of
    task N hard-kill its worker process (process backend only).  Used
    by the chaos tests and the CI chaos step to exercise the
    retry/quarantine/respawn machinery against a real campaign.
    """

    def _index(name: str) -> Optional[int]:
        value = os.environ.get(name)
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            return None

    return (
        _index("REPRO_CHAOS_FAIL_INDEX"),
        _index("REPRO_CHAOS_KILL_INDEX"),
    )


@contextmanager
def _task_alarm(seconds: Optional[float]) -> Iterator[None]:
    """Interrupt the current task after *seconds* via SIGALRM.

    Only armed in the main thread of a process (the only place Python
    delivers signals); elsewhere the timeout is not enforced rather
    than broken.
    """
    if (
        not seconds
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise _TaskTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _sentinel_probe(worker: int) -> str:
    """Worker-side half of the drift sentinel: a fresh golden digest.

    Dispatched to a new pool before any real task.  The digest is
    computed from scratch (no caches), so it reflects what *this*
    worker's arithmetic and code actually produce.
    ``REPRO_CHAOS_DRIFT_WORKER=1`` deliberately corrupts the probe —
    in forked children only — to exercise the broken-pool path.
    """
    compute, _ = _ACTIVE_SENTINEL  # type: ignore[misc]
    digest = compute()
    if os.environ.get("REPRO_CHAOS_DRIFT_WORKER") == "1":
        digest = f"chaos-drift-{digest[:8]}"
    return digest


def _execute_attempt(index: int, attempt: int) -> Tuple[int, Dict, float]:
    """One attempt of one task; errors become in-band payloads."""
    started = time.perf_counter()
    fail_index, _ = _ACTIVE_CHAOS
    ff_before = ff_stats.as_tuple()
    integ_before = integrity_stats.as_tuple()
    try:
        if fail_index is not None and index == fail_index and attempt == 1:
            raise RuntimeError(f"chaos: injected failure at task {index}")
        with _task_alarm(_ACTIVE_TIMEOUT):
            result = _ACTIVE_RUNNER(index)  # type: ignore[misc]
        payload: Dict[str, Any] = {"ok": result}
        # fast-forward savings travel beside the result — never inside
        # it, so checkpoints and aggregates stay bit-identical whether
        # fast-forwarding is on or off
        ff_delta = tuple(
            after - before
            for before, after in zip(ff_before, ff_stats.as_tuple())
        )
        if any(ff_delta):
            payload["ff"] = ff_delta
    except _TaskTimeout:
        payload = {
            "err": f"timed out after {_ACTIVE_TIMEOUT:g} s",
            "kind": "timeout",
        }
    except IntegrityError as exc:
        # a strict-policy audit mismatch: deterministic, so a retry
        # would only repeat it — the parent aborts instead
        payload = {"err": str(exc), "kind": "integrity"}
    except Exception as exc:
        payload = {"err": f"{type(exc).__name__}: {exc}", "kind": "exception"}
    # audit counters and structured violations travel beside the
    # result, like the fast-forward delta above
    integ_delta = tuple(
        after - before
        for before, after in zip(integ_before, integrity_stats.as_tuple())
    )
    if any(integ_delta):
        payload["integ"] = integ_delta
    violations = drain_violations()
    if violations:
        payload["viol"] = [violation.to_json() for violation in violations]
    return index, payload, time.perf_counter() - started


def _pool_task(item: Tuple[int, int]) -> Tuple[int, Dict, float]:
    index, attempt = item
    _, kill_index = _ACTIVE_CHAOS
    if kill_index is not None and index == kill_index and attempt == 1:
        os._exit(17)  # simulate a hard worker death (chaos testing)
    return _execute_attempt(index, attempt)


def _pool_chunk(
    items: List[Tuple[int, int]]
) -> List[Tuple[int, Dict, float]]:
    """A batch of tasks as one pool work item.

    Chunking is done here rather than via the pool's ``chunksize``:
    ``imap_unordered(..., chunksize>1)`` returns a plain generator
    without the ``next(timeout)`` needed by the watchdog, so the pool
    always dispatches single work items and each item carries a batch.
    """
    return [_pool_task(item) for item in items]


def _backoff_s(config: CampaignConfig, attempt: int) -> float:
    """Exponential backoff before the given (>= 2nd) attempt."""
    if attempt <= 1 or config.retry_backoff_s <= 0:
        return 0.0
    return min(config.retry_backoff_s * (2 ** (attempt - 2)), MAX_BACKOFF_S)


# ======================================================================
# The executor.
# ======================================================================
class CampaignExecutor:
    """Maps a pure task function over a task list, with checkpointing
    and fault tolerance.

    ``runner(index)`` must be a pure function of the pre-drawn task
    parameters at ``index`` (no shared RNG, no mutation of campaign
    state) and must return a JSON-encodable value when checkpointing
    is enabled.  Results are returned in task order regardless of the
    completion order, so parallel execution is bit-identical to
    serial.

    A task that raises, times out or kills its worker is retried up
    to ``config.retries`` times and then quarantined: its result slot
    holds a :class:`TaskFailure` instead of aborting the run.  The
    checkpoint is flushed on every exit path.
    """

    def __init__(
        self,
        config: Optional[CampaignConfig] = None,
        campaign: str = "campaign",
        cache: Optional[GoldenRunCache] = None,
    ):
        self.config = config or CampaignConfig()
        self.campaign = campaign
        self.cache = cache if cache is not None else golden_cache
        #: telemetry of the most recent :meth:`run_tasks` call.
        self.telemetry: Optional[CampaignTelemetry] = None
        #: integrity violations observed by the most recent run
        #: (audit mismatches, rejected checkpoint records, drift).
        self.violations: List[IntegrityViolation] = []
        self._events = RunEventLog(None, campaign)
        self._digests: Dict[int, str] = {}
        # cache and fast-forward stats count from executor
        # construction, so golden runs and checkpoint tracks built
        # while the campaign pre-draws its parameters show up
        self._cache_hits0 = self.cache.hits
        self._cache_misses0 = self.cache.misses
        self._ff0 = ff_stats.as_tuple()
        self._integ0 = integrity_stats.as_tuple()

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------
    def _load_checkpoint(
        self, fingerprint: str, n_tasks: int
    ) -> Tuple[Dict[int, Any], int]:
        """Load matching records; returns (done, rejected-record count).

        Every record that ships with a digest is re-verified against
        it before being merged.  A mismatch means the file was
        corrupted (or hand-edited) after it was written: under
        ``repair`` the record is dropped and its task re-executed,
        under ``strict`` the resume aborts, under ``off`` the record
        is accepted unverified.  Records without digests (pre-digest
        checkpoints) load unverified on any policy.
        """
        path = self.config.checkpoint_path
        if not path or not os.path.exists(path):
            return {}, 0
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}, 0
        if (
            not isinstance(payload, dict)
            or payload.get("campaign") != self.campaign
            or payload.get("fingerprint") != fingerprint
            or payload.get("n_tasks") != n_tasks
        ):
            return {}, 0
        policy = self.config.integrity_policy
        digests = payload.get("digests")
        if not isinstance(digests, dict):
            digests = {}
        rejects = 0
        # a structurally corrupt checkpoint (non-numeric indices,
        # results that aren't a mapping, mangled failure records) is
        # discarded like a mismatched one — never crash the campaign
        try:
            done: Dict[int, Any] = {}
            for index, result in payload.get("results", {}).items():
                i = int(index)
                if not 0 <= i < n_tasks:
                    continue
                stored = digests.get(index)
                if stored is not None and policy != "off":
                    try:
                        computed = canonical_digest(result)
                    except IntegrityError:
                        computed = "<undigestable>"
                    if computed != stored:
                        rejects += 1
                        violation = IntegrityViolation(
                            kind="checkpoint_digest",
                            campaign=self.campaign,
                            index=i,
                            detail=(
                                "stored record does not match its digest"
                            ),
                            expected=str(stored),
                            observed=computed,
                        )
                        self.violations.append(violation)
                        self._events.emit(
                            "integrity_violation",
                            kind=violation.kind,
                            index=i,
                            detail=violation.detail,
                        )
                        if policy == "strict":
                            raise IntegrityError(
                                f"checkpoint {path} failed verification: "
                                f"{violation.describe()}"
                            )
                        continue  # repair: drop it, re-execute the task
                if isinstance(stored, str):
                    self._digests[i] = stored
                if TaskFailure.is_encoded(result):
                    result = TaskFailure.from_json(result)
                done[i] = result
        except (AttributeError, KeyError, TypeError, ValueError):
            return {}, rejects
        return done, rejects

    def _flush_checkpoint(
        self, fingerprint: str, n_tasks: int, done: Dict[int, Any]
    ) -> None:
        path = self.config.checkpoint_path
        if not path:
            return
        results: Dict[str, Any] = {}
        for index, result in done.items():
            encoded = (
                result.to_json()
                if isinstance(result, TaskFailure)
                else result
            )
            results[str(index)] = encoded
            if index not in self._digests:
                try:
                    self._digests[index] = canonical_digest(encoded)
                except IntegrityError:
                    pass  # non-JSON results cannot be verified later
        payload = {
            "campaign": self.campaign,
            "fingerprint": fingerprint,
            "n_tasks": n_tasks,
            "results": results,
            "digests": {
                str(index): digest
                for index, digest in self._digests.items()
                if index in done
            },
        }
        tmp = f"{path}.tmp"
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        self._events.emit("checkpoint_flush", done=len(done))

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        runner: Callable[[int], Any],
        n_tasks: int,
        fingerprint: str = "",
        sentinel: Optional[Callable[[], str]] = None,
        indices: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        """Execute ``runner`` over ``range(n_tasks)``; results in order.

        Quarantined tasks yield :class:`TaskFailure` entries in the
        returned list; everything else is the runner's return value.

        *sentinel*, when given (and the integrity policy is not
        ``off``), is a callable computing a fresh golden-run digest;
        before any tasks are dispatched to a process pool, every
        worker runs it and the parent compares the digests with its
        own.  A divergent worker marks the pool broken — it is
        respawned (and eventually degraded to serial) without any
        task attempt budgets being consumed.

        *indices*, when given, restricts execution to that subset of
        the task space (the adaptive sampler dispatches one batch per
        call this way); the returned list is aligned with *indices*.
        The checkpoint keeps indexing the full ``n_tasks`` space, so
        batched and whole-campaign runs share checkpoints and resume
        interchangeably.
        """
        config = self.config
        self.violations = []
        self._digests = {}
        events = RunEventLog(config.event_log_path, self.campaign)
        self._events = events
        try:
            done, checkpoint_rejects = self._load_checkpoint(
                fingerprint, n_tasks
            )
        except IntegrityError:
            events.close()
            self._events = RunEventLog(None, self.campaign)
            raise
        if indices is None:
            wanted: Sequence[int] = range(n_tasks)
        else:
            wanted = list(indices)
            for index in wanted:
                if not 0 <= index < n_tasks:
                    raise CampaignError(
                        f"task index {index} outside the campaign's "
                        f"{n_tasks}-task space"
                    )
        resumed = sum(1 for i in wanted if i in done)
        pending = [i for i in wanted if i not in done]
        # report the backend actually used: the process backend falls
        # back to serial when fork is unavailable or the workload is
        # too small to be worth a pool
        backend = config.resolved_backend()
        if backend == "process" and (
            "fork" not in multiprocessing.get_all_start_methods()
            or len(pending) <= 1
        ):
            backend = "serial"
        telemetry = CampaignTelemetry(
            campaign=self.campaign,
            backend=backend,
            jobs=config.jobs if backend == "process" else 1,
            total_runs=n_tasks,
            resumed_runs=resumed,
            checkpoint_rejects=checkpoint_rejects,
        )
        checkpointing = bool(config.checkpoint_path)
        since_flush = 0
        attempts: Dict[int, int] = {index: 0 for index in pending}
        started = time.perf_counter()
        start_fields: Dict[str, Any] = {
            "backend": backend,
            "jobs": telemetry.jobs,
            "total": n_tasks,
            "resumed": resumed,
        }
        if indices is not None:
            start_fields["batch"] = len(wanted)
        events.emit("run_start", **start_fields)

        def record(index: int, value: Any) -> None:
            nonlocal since_flush
            done[index] = value
            since_flush += 1
            if checkpointing and since_flush >= config.checkpoint_every:
                self._flush_checkpoint(fingerprint, n_tasks, done)
                since_flush = 0

        def absorb_ff(ff_delta: Optional[Tuple[int, ...]]) -> None:
            """Fold a pool worker's fast-forward delta into telemetry.

            Only pool results are absorbed this way: in-process work
            (serial tasks, degraded tasks, track preloads) mutates the
            parent's ``ff_stats`` directly and is accounted once, as
            the process-wide delta, when the run finishes.
            """
            if ff_delta:
                telemetry.ff_restores += ff_delta[0]
                telemetry.ff_resyncs += ff_delta[1]
                telemetry.ff_ticks_saved += ff_delta[2]
                telemetry.ff_tracks += ff_delta[3]

        def absorb_integrity(integ_delta: Optional[Tuple[int, ...]]) -> None:
            """Fold a pool worker's audit counters into telemetry.

            Pool results only, mirroring :func:`absorb_ff`: in-process
            audits mutate the parent's ``integrity_stats`` directly
            and are accounted once, as the process-wide delta, when
            the run finishes.
            """
            if integ_delta:
                telemetry.audits += integ_delta[0]
                telemetry.audit_mismatches += integ_delta[1]
                telemetry.audit_repairs += integ_delta[2]

        def absorb_violations(payload: Dict) -> None:
            """Collect a task's structured violations (any backend).

            Violations are drained exactly once, inside
            :func:`_execute_attempt`, so absorbing them from the
            payload is double-count-free on both backends.
            """
            for encoded in payload.get("viol", ()):
                violation = IntegrityViolation.from_json(encoded)
                self.violations.append(violation)
                events.emit(
                    "integrity_violation",
                    kind=violation.kind,
                    index=violation.index,
                    detail=violation.detail,
                )

        def succeed(index: int, payload: Dict, busy: float) -> None:
            telemetry.executed_runs += 1
            telemetry.busy_s += busy
            absorb_violations(payload)
            record(index, payload["ok"])
            events.emit(
                "task_finish",
                index=index,
                attempt=attempts.get(index, 1),
                busy_s=round(busy, 6),
            )

        def quarantine(index: int, kind: str, error: str) -> None:
            failure = TaskFailure(
                index=index,
                kind=kind,
                error=str(error),
                attempts=max(attempts.get(index, 1), 1),
            )
            telemetry.failures += 1
            record(index, failure)
            events.emit(
                "task_failure",
                index=index,
                kind=kind,
                attempts=failure.attempts,
                error=failure.error,
            )

        def fail_attempt(index: int, payload: Dict, busy: float) -> None:
            """Account one failed attempt; quarantine when exhausted."""
            telemetry.busy_s += busy
            kind = payload.get("kind", "exception")
            absorb_violations(payload)
            if kind == "timeout":
                telemetry.timeouts += 1
            events.emit(
                "task_error",
                index=index,
                attempt=attempts[index],
                kind=kind,
                error=payload.get("err", ""),
            )
            if kind == "integrity":
                # a strict-policy violation is deterministic: retrying
                # replays the identical mismatch, so abort the campaign
                # (the checkpoint still flushes on the way out)
                raise IntegrityError(
                    payload.get("err", "integrity violation")
                )
            if attempts[index] >= config.retries + 1:
                quarantine(index, kind, payload.get("err", ""))

        def run_serial(indices: Sequence[int]) -> None:
            for index in indices:
                while index not in done:
                    attempts[index] += 1
                    attempt = attempts[index]
                    if attempt > 1:
                        telemetry.retries += 1
                        events.emit(
                            "task_retry", index=index, attempt=attempt
                        )
                        time.sleep(_backoff_s(config, attempt))
                    events.emit("task_start", index=index, attempt=attempt)
                    _, payload, busy = _execute_attempt(index, attempt)
                    if "ok" in payload:
                        succeed(index, payload, busy)
                    else:
                        fail_attempt(index, payload, busy)

        def verify_pool(pool, watchdog: float) -> Optional[str]:
            """Drift-sentinel check of a fresh pool; ``None`` = healthy.

            Dispatches one probe per worker slot (probes may not land
            one-per-process, but the drift scenarios that matter —
            FP environment drift, mismatched code — affect every
            child of the same parent alike, so any probe detects
            them).  Returns the reason the pool cannot be trusted.
            """
            if _ACTIVE_SENTINEL is None:
                return None
            _, expected = _ACTIVE_SENTINEL
            try:
                probes = pool.map_async(
                    _sentinel_probe, range(config.jobs), chunksize=1
                ).get(watchdog)
            except multiprocessing.TimeoutError:
                return (
                    f"sentinel probes produced no result within the "
                    f"{watchdog:.0f} s watchdog"
                )
            except Exception as exc:
                return f"sentinel probe failed: {type(exc).__name__}: {exc}"
            drifted = [d for d in probes if d != expected]
            if not drifted:
                return None
            telemetry.drift_events += 1
            violation = IntegrityViolation(
                kind="worker_drift",
                campaign=self.campaign,
                detail=(
                    f"{len(drifted)}/{len(probes)} worker golden "
                    f"digests diverged from the parent's"
                ),
                expected=expected,
                observed=drifted[0],
            )
            self.violations.append(violation)
            events.emit(
                "worker_drift",
                drifted=len(drifted),
                probes=len(probes),
                expected=expected,
                observed=drifted[0],
            )
            return violation.detail

        def run_pool(indices: Sequence[int]) -> None:
            context = multiprocessing.get_context("fork")
            respawns_left = config.max_pool_respawns
            watchdog = config.resolved_watchdog()
            remaining = [i for i in indices if i not in done]
            pool = context.Pool(processes=config.jobs)
            unhealthy = verify_pool(pool, watchdog)
            try:
                while remaining:
                    if unhealthy is not None:
                        # a drifted pool never ran a task, so no
                        # attempt budget was consumed; tear it down
                        # like any other broken pool
                        pool.terminate()
                        pool.join()
                        events.emit("pool_broken", reason=unhealthy)
                        if respawns_left <= 0:
                            telemetry.degraded = True
                            events.emit(
                                "backend_degraded",
                                reason=(
                                    "pool respawn budget exhausted"
                                ),
                                remaining=len(remaining),
                            )
                            run_serial(remaining)
                            return
                        respawns_left -= 1
                        telemetry.pool_respawns += 1
                        pool = context.Pool(processes=config.jobs)
                        events.emit(
                            "pool_respawn",
                            jobs=config.jobs,
                            remaining=len(remaining),
                        )
                        unhealthy = verify_pool(pool, watchdog)
                        continue
                    wave_attempt = 1
                    for index in remaining:
                        attempts[index] += 1
                        wave_attempt = max(wave_attempt, attempts[index])
                        if attempts[index] > 1:
                            telemetry.retries += 1
                            events.emit(
                                "task_retry",
                                index=index,
                                attempt=attempts[index],
                            )
                    if wave_attempt > 1:
                        time.sleep(_backoff_s(config, wave_attempt))
                    items = [(i, attempts[i]) for i in remaining]
                    # chunking amortizes pipe traffic, but a lost
                    # worker loses its whole chunk — dispatch singly
                    # once per-task timeouts are in play
                    chunk_n = (
                        1
                        if config.task_timeout is not None
                        else max(1, len(items) // (config.jobs * 8))
                    )
                    chunks = [
                        items[k:k + chunk_n]
                        for k in range(0, len(items), chunk_n)
                    ]
                    iterator = pool.imap_unordered(
                        _pool_chunk, chunks, chunksize=1
                    )
                    broken: Optional[str] = None
                    received = 0
                    while received < len(chunks):
                        try:
                            results = iterator.next(watchdog)
                        except StopIteration:
                            break
                        except multiprocessing.TimeoutError:
                            broken = (
                                f"no result within the {watchdog:.0f} s "
                                f"watchdog (worker death or wedged pool)"
                            )
                            break
                        except Exception as exc:
                            broken = (
                                f"pool failure: "
                                f"{type(exc).__name__}: {exc}"
                            )
                            break
                        received += 1
                        for index, payload, busy in results:
                            absorb_integrity(payload.get("integ"))
                            if "ok" in payload:
                                absorb_ff(payload.get("ff"))
                                succeed(index, payload, busy)
                            else:
                                fail_attempt(index, payload, busy)
                    # in-flight tasks of a broken pool were lost; any
                    # task not done re-enters the next wave until its
                    # attempt budget runs out
                    remaining = []
                    for index in indices:
                        if index in done:
                            continue
                        if attempts[index] >= config.retries + 1:
                            quarantine(
                                index,
                                "lost",
                                "task lost to a worker or pool failure",
                            )
                        else:
                            remaining.append(index)
                    if broken is not None:
                        pool.terminate()
                        pool.join()
                        events.emit("pool_broken", reason=broken)
                        if not remaining:
                            break
                        if respawns_left <= 0:
                            telemetry.degraded = True
                            events.emit(
                                "backend_degraded",
                                reason="pool respawn budget exhausted",
                                remaining=len(remaining),
                            )
                            run_serial(remaining)
                            return
                        respawns_left -= 1
                        telemetry.pool_respawns += 1
                        pool = context.Pool(processes=config.jobs)
                        events.emit(
                            "pool_respawn",
                            jobs=config.jobs,
                            remaining=len(remaining),
                        )
                        unhealthy = verify_pool(pool, watchdog)
            finally:
                pool.terminate()
                pool.join()

        global _ACTIVE_RUNNER, _ACTIVE_TIMEOUT, _ACTIVE_CHAOS
        global _ACTIVE_SENTINEL
        _ACTIVE_RUNNER = runner
        _ACTIVE_TIMEOUT = config.task_timeout
        _ACTIVE_CHAOS = _chaos_from_env()
        _ACTIVE_SENTINEL = None
        if (
            backend == "process"
            and sentinel is not None
            and config.integrity_policy != "off"
        ):
            # the parent's own digest, computed before the fork, is
            # the reference every worker probe is compared against
            _ACTIVE_SENTINEL = (sentinel, sentinel())
        status = "ok"
        try:
            if backend == "process":
                run_pool(pending)
            else:
                run_serial(pending)
        except BaseException as exc:  # KeyboardInterrupt included
            status = type(exc).__name__
            raise
        finally:
            _ACTIVE_RUNNER = None
            _ACTIVE_TIMEOUT = None
            _ACTIVE_CHAOS = (None, None)
            _ACTIVE_SENTINEL = None
            telemetry.wall_s = time.perf_counter() - started
            telemetry.cache_hits = self.cache.hits - self._cache_hits0
            telemetry.cache_misses = self.cache.misses - self._cache_misses0
            ff_now = ff_stats.as_tuple()
            absorb_ff(
                tuple(
                    after - before
                    for before, after in zip(self._ff0, ff_now)
                )
            )
            self._ff0 = ff_now
            integ_now = integrity_stats.as_tuple()
            absorb_integrity(
                tuple(
                    after - before
                    for before, after in zip(self._integ0, integ_now)
                )
            )
            self._integ0 = integ_now
            # the no-lost-progress guarantee: flush on every exit path
            if checkpointing:
                self._flush_checkpoint(fingerprint, n_tasks, done)
            self.telemetry = telemetry
            events.emit(
                "run_end",
                status=status,
                executed=telemetry.executed_runs,
                resumed=telemetry.resumed_runs,
                retries=telemetry.retries,
                failures=telemetry.failures,
                timeouts=telemetry.timeouts,
                respawns=telemetry.pool_respawns,
                degraded=telemetry.degraded,
                audits=telemetry.audits,
                audit_mismatches=telemetry.audit_mismatches,
                audit_repairs=telemetry.audit_repairs,
                drift_events=telemetry.drift_events,
                checkpoint_rejects=telemetry.checkpoint_rejects,
                violations=len(self.violations),
                wall_s=round(telemetry.wall_s, 3),
            )
            events.close()
            self._events = RunEventLog(None, self.campaign)
        return [done[index] for index in wanted]
