"""Parallel, cache-aware, fault-tolerant campaign execution engine.

Fault-injection campaigns are embarrassingly parallel: thousands of
single-flip runs, each a fresh simulator, sharing nothing but the
golden runs.  This module factors the execution strategy out of the
campaign drivers:

* :class:`CampaignConfig` — the shared campaign configuration (seed,
  test cases, worker count, backend, checkpointing, fault-tolerance
  knobs), accepted uniformly by all campaign drivers.
* :class:`CampaignExecutor` — maps a pure per-task function over a
  pre-drawn task list, serially or on a fork-based process pool,
  with checkpoint/resume to disk, per-campaign telemetry, and a
  fault-tolerance layer (per-task timeout, bounded retry with
  exponential backoff, poison-task quarantine, broken-pool respawn,
  graceful degradation to serial execution).
* :class:`TaskFailure` — the structured record of a quarantined task;
  it takes the task's slot in the result list and in the checkpoint
  instead of aborting the campaign.
* :class:`RunEventLog` — an append-only JSONL log of run events (task
  finish/retry/failure, checkpoint flushes, pool respawns) for
  post-hoc campaign forensics.
* :class:`GoldenRunCache` — process-wide golden-run cache keyed by
  (target, test case, factory), with single-flight semantics and
  bounded LRU eviction, so a golden run is computed exactly once no
  matter how many campaigns (or concurrent callers) ask for it and
  long sessions over many targets do not grow without bound.

Determinism contract
--------------------
Campaigns draw **all** random parameters up front, in the exact order
the legacy serial loops drew them, and hand the executor a list of
pure tasks.  Tasks may complete in any order; results are aggregated
in task order.  Parallel execution is therefore bit-identical to
serial execution for the same seed.  Retries re-run the same pure
task, so a fault-free campaign (no retries, no quarantines) remains
bit-identical across backends; a faulty one is deterministic up to
which tasks were quarantined.

Failure handling
----------------
``runner(index)`` raising, timing out, or taking its worker process
down no longer aborts the campaign.  Each task gets ``retries + 1``
attempts (with exponential backoff between attempts); a task that
exhausts its budget is *quarantined*: a :class:`TaskFailure` is
recorded in its result slot and in the checkpoint, and the campaign
completes with the surviving runs.  A worker death (or a wedged pool)
is detected by a result watchdog; the pool is terminated, respawned
(at most ``max_pool_respawns`` times) and the in-flight tasks are
re-dispatched.  When the pool cannot be rebuilt, execution degrades
to the serial backend for the remaining tasks.  The checkpoint is
flushed on **every** exit path — success, exception and
KeyboardInterrupt — so no completed run is ever lost.

Checkpointing and the result store
----------------------------------
Campaign persistence lives behind the
:class:`~repro.fi.store.ResultStore` interface
(:mod:`repro.fi.store`): the executor opens the store named by
``config.checkpoint.path`` (the path's suffix — or
``checkpoint.backend`` — selects the legacy single-file JSON
checkpoint or the sqlite results database), binds it to the campaign
identity ``(campaign, fingerprint, n_tasks)``, streams each finished
task record into it and flushes every ``checkpoint.every`` tasks and
on every exit path.  A resume run with a matching fingerprint
schedules only the tasks the store has no verified record for; a
mismatched fingerprint — or a structurally corrupt checkpoint —
discards the stored records instead of crashing.  Digest stamping and
verification are store-level concerns: records whose stored canonical
digest does not verify on load are handled per the integrity policy —
dropped and re-executed (``repair``, the default), fatal (``strict``),
or accepted unverified (``off``) — and pre-digest checkpoints (no
``digests`` map) still load.

Result integrity
----------------
The executor carries the runtime self-checking layer of
:mod:`repro.fi.integrity`: per-record checkpoint digests (above),
sampled audit replay (campaign drivers wrap their task function in a
:class:`~repro.fi.integrity.RunAuditor`; the executor ships audit
counters and :class:`~repro.fi.integrity.IntegrityViolation` records
home from pool workers in-band), and worker drift sentinels — before
dispatching tasks to a fresh pool, every worker digests a locally
computed golden run and the parent compares the digests against its
own, treating any divergence as a broken pool (respawn, then degrade
to serial).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import multiprocessing
import os
import random
import signal
import threading
import time
import warnings
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from dataclasses import field as dataclasses_field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import CampaignError, IntegrityError
from repro.fi.golden import GoldenRun, GoldenRunStore
from repro.fi.integrity import (
    POLICIES,
    IntegrityViolation,
    drain_violations,
    integrity_stats,
)
from repro.fi.snapshot import DEFAULT_CHECKPOINT_STRIDE, ff_stats
from repro.fi.store import STORE_BACKENDS, ResultStore, open_store
from repro.fi.vector import vector_stats

__all__ = [
    "BACKENDS",
    "CHECKPOINT_SCHEMA_REVISION",
    "AdaptivePolicy",
    "CampaignConfig",
    "CampaignTelemetry",
    "CampaignExecutor",
    "CheckpointPolicy",
    "FastForwardPolicy",
    "FaultTolerancePolicy",
    "GoldenRunCache",
    "IntegrityPolicy",
    "RunEventLog",
    "TaskFailure",
    "VectorPolicy",
    "decorrelated_backoff",
    "golden_cache",
    "fingerprint_of",
]

BACKENDS = ("serial", "process")

#: bumped whenever the checkpoint document layout changes; salted into
#: every fingerprint so old files mismatch instead of half-loading.
CHECKPOINT_SCHEMA_REVISION = 2

#: watchdog on pool results when no per-task timeout is configured: if
#: *no* result arrives for this long, the pool is considered broken.
DEFAULT_POOL_WATCHDOG_S = 300.0

#: upper bound on one exponential-backoff sleep between attempts.
MAX_BACKOFF_S = 30.0


# ======================================================================
# Configuration.
# ======================================================================
@dataclass(frozen=True)
class CheckpointPolicy:
    """Where and how campaign progress is persisted.

    *path* names the campaign's result store; its suffix selects the
    store backend (``.db``/``.sqlite``/``.sqlite3`` → sqlite,
    anything else → the legacy JSON document) unless *backend* pins
    one explicitly.
    """

    #: checkpoint / results-store file; ``None`` disables persistence.
    path: Optional[str] = None
    #: flush the store every this many completed tasks.
    every: int = 32
    #: ``"json"`` or ``"sqlite"``; ``None`` derives from the suffix.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise CampaignError(
                f"checkpoint_every must be >= 1, got {self.every}"
            )
        if self.backend is not None and self.backend not in STORE_BACKENDS:
            raise CampaignError(
                f"unknown store backend {self.backend!r}; "
                f"choose from {STORE_BACKENDS}"
            )


@dataclass(frozen=True)
class FaultTolerancePolicy:
    """Retry, timeout and pool-survival knobs."""

    #: per-task wall-clock budget in seconds; ``None`` = unlimited.
    task_timeout: Optional[float] = None
    #: extra attempts per task before quarantine (total = retries + 1).
    retries: int = 1
    #: base of the retry backoff between attempts, in seconds.
    retry_backoff_s: float = 0.25
    #: decorrelate the retry backoff with seeded jitter so concurrent
    #: campaigns (and their workers) do not stampede in lockstep;
    #: ``False`` restores the legacy deterministic exponential ramp.
    retry_jitter: bool = True
    #: seed of the backoff jitter stream; ``None`` uses the campaign
    #: seed, so test runs stay reproducible.
    backoff_seed: Optional[int] = None
    #: pool rebuilds tolerated before degrading to serial execution.
    max_pool_respawns: int = 2
    #: stall watchdog on pool results; ``None`` derives it from
    #: ``task_timeout`` (or :data:`DEFAULT_POOL_WATCHDOG_S`).
    pool_watchdog_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise CampaignError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.retries < 0:
            raise CampaignError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff_s < 0:
            raise CampaignError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.max_pool_respawns < 0:
            raise CampaignError(
                f"max_pool_respawns must be >= 0, "
                f"got {self.max_pool_respawns}"
            )
        if self.pool_watchdog_s is not None and self.pool_watchdog_s <= 0:
            raise CampaignError(
                f"pool_watchdog_s must be positive, "
                f"got {self.pool_watchdog_s}"
            )


@dataclass(frozen=True)
class FastForwardPolicy:
    """The snapshot fast-forward engine's knobs."""

    #: restore golden checkpoints instead of re-simulating the prefix
    #: (bit-identical either way; off = always simulate from tick 0).
    enabled: bool = True
    #: ticks between golden checkpoints for fast-forwarded runs.
    checkpoint_stride: int = DEFAULT_CHECKPOINT_STRIDE
    #: flatten golden tracks into shared-memory columns pre-fork and
    #: restore checkpoints out of the shared segments (bit-identical
    #: either way; also killable via ``REPRO_NO_TRACK_POOL=1``).
    track_pool: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_stride < 1:
            raise CampaignError(
                f"checkpoint_stride must be >= 1, "
                f"got {self.checkpoint_stride}"
            )


@dataclass(frozen=True)
class IntegrityPolicy:
    """Runtime self-verification of campaign results."""

    #: ``"strict"`` (violations abort), ``"repair"`` (violations are
    #: healed from a trusted recomputation) or ``"off"`` (no
    #: verification: no checkpoint digest checks, audits or sentinels).
    policy: str = "repair"
    #: fraction of fast-forwarded runs re-executed full-length and
    #: field-diffed against the fast-forward result (0.0 = no audits).
    audit_fraction: float = 0.0
    #: seed of the deterministic audit sample; ``None`` uses ``seed``.
    audit_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.audit_fraction <= 1.0:
            raise CampaignError(
                f"audit_fraction must be within [0, 1], "
                f"got {self.audit_fraction}"
            )
        if self.policy not in POLICIES:
            raise CampaignError(
                f"unknown integrity policy {self.policy!r}; "
                f"choose from {POLICIES}"
            )


@dataclass(frozen=True)
class AdaptivePolicy:
    """Confidence-driven sequential sampling.

    Campaigns that support stratified estimation (permeability,
    detection) dispatch batches per stratum and stop early once the
    interval targets are met; campaigns that enumerate their fault
    space (memory, recovery) ignore the policy.
    """

    #: master switch for adaptive scheduling.
    enabled: bool = False
    #: confidence level of the stopping intervals and bounds.
    ci_level: float = 0.95
    #: two-sided Wilson half-width at which a stratum's estimate is
    #: precise enough to stop.  ``0`` disables early stopping entirely
    #: (the adaptive engine then runs the full budget in batches and is
    #: bit-identical to fixed-n scheduling).
    ci_halfwidth: float = 0.2
    #: injections dispatched per stratum per adaptive round.
    min_batch: int = 4
    #: per-stratum injection budget for adaptive campaigns; ``None``
    #: uses the driver's fixed-n run count (``runs_per_input`` /
    #: ``runs_per_signal``).
    max_runs: Optional[int] = None
    #: one-sided upper bound below which an all-miss stratum pair is
    #: certified an architectural zero.
    zero_threshold: float = 0.3
    #: one-sided lower bound above which a pair is certified saturated.
    saturation_threshold: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 < self.ci_level < 1.0:
            raise CampaignError(
                f"ci_level must be within (0, 1), got {self.ci_level}"
            )
        if not 0.0 <= self.ci_halfwidth < 1.0:
            raise CampaignError(
                f"ci_halfwidth must be within [0, 1), "
                f"got {self.ci_halfwidth}"
            )
        if self.min_batch < 1:
            raise CampaignError(
                f"min_batch must be >= 1, got {self.min_batch}"
            )
        if self.max_runs is not None and self.max_runs < 1:
            raise CampaignError(
                f"max_runs must be >= 1, got {self.max_runs}"
            )
        if not 0.0 <= self.zero_threshold < 1.0:
            raise CampaignError(
                f"zero_threshold must be within [0, 1), "
                f"got {self.zero_threshold}"
            )
        if not 0.0 < self.saturation_threshold <= 1.0:
            raise CampaignError(
                f"saturation_threshold must be within (0, 1], "
                f"got {self.saturation_threshold}"
            )


@dataclass(frozen=True)
class VectorPolicy:
    """Vectorized batch execution (``repro.fi.vector``).

    ``batch_width`` > 0 lets campaigns that publish a batch planner
    advance up to that many injected runs per numpy tick inside one
    worker; rows follow their own — possibly corrupted — dispatch
    schedule via masked invocations where the kernel supports it, and
    otherwise retire to the scalar path, so results stay
    bit-identical to scalar execution.  ``0`` (the default) keeps the
    scalar path for everything.  Campaigns without a planner ignore
    the policy.
    """

    #: injected runs advanced per vectorized tick; 0 disables batching.
    batch_width: int = 0

    def __post_init__(self) -> None:
        if self.batch_width < 0:
            raise CampaignError(
                f"batch_width must be >= 0, got {self.batch_width}"
            )


#: flat constructor kwarg -> (policy attribute, field) mapping.  The
#: flat spellings remain readable as properties forever; *passing*
#: them to the constructor is deprecated (``store_backend`` excepted,
#: which was never a flat field and carries no legacy).
_FLAT_FIELDS: Dict[str, Tuple[str, str]] = {
    "checkpoint_path": ("checkpoint", "path"),
    "checkpoint_every": ("checkpoint", "every"),
    "store_backend": ("checkpoint", "backend"),
    "task_timeout": ("fault_tolerance", "task_timeout"),
    "retries": ("fault_tolerance", "retries"),
    "retry_backoff_s": ("fault_tolerance", "retry_backoff_s"),
    "retry_jitter": ("fault_tolerance", "retry_jitter"),
    "backoff_seed": ("fault_tolerance", "backoff_seed"),
    "max_pool_respawns": ("fault_tolerance", "max_pool_respawns"),
    "pool_watchdog_s": ("fault_tolerance", "pool_watchdog_s"),
    "fast_forward": ("fastforward", "enabled"),
    "checkpoint_stride": ("fastforward", "checkpoint_stride"),
    "track_pool": ("fastforward", "track_pool"),
    "integrity_policy": ("integrity", "policy"),
    "audit_fraction": ("integrity", "audit_fraction"),
    "audit_seed": ("integrity", "audit_seed"),
    "adaptive": ("sampling", "enabled"),
    "ci_level": ("sampling", "ci_level"),
    "ci_halfwidth": ("sampling", "ci_halfwidth"),
    "min_batch": ("sampling", "min_batch"),
    "max_runs": ("sampling", "max_runs"),
    "zero_threshold": ("sampling", "zero_threshold"),
    "saturation_threshold": ("sampling", "saturation_threshold"),
    "batch_width": ("vector", "batch_width"),
}

#: flat kwargs accepted without a deprecation warning.
_FLAT_NO_WARN = frozenset(
    {"store_backend", "batch_width", "track_pool",
     "retry_jitter", "backoff_seed"}
)

_POLICY_TYPES = {
    "checkpoint": CheckpointPolicy,
    "fault_tolerance": FaultTolerancePolicy,
    "fastforward": FastForwardPolicy,
    "integrity": IntegrityPolicy,
    "sampling": AdaptivePolicy,
    "vector": VectorPolicy,
}


class CampaignConfig:
    """Shared configuration accepted by every campaign driver.

    Campaign-specific workload knobs (``runs_per_input``, assertion
    specs, memory locations) remain constructor arguments of the
    individual drivers; this class carries what is common to all of
    them.  Explicit constructor arguments win over config values.

    The execution options are grouped into nested policies::

        CampaignConfig(
            seed=2002, jobs=4,
            checkpoint=CheckpointPolicy(path="run.db", every=16),
            fault_tolerance=FaultTolerancePolicy(retries=2),
            fastforward=FastForwardPolicy(checkpoint_stride=64),
            integrity=IntegrityPolicy(policy="strict"),
            sampling=AdaptivePolicy(enabled=True, ci_halfwidth=0.1),
        )

    The pre-redesign flat keyword arguments (``checkpoint_path=...``,
    ``audit_fraction=...``, ...) are still accepted — they are mapped
    onto the nested policies and emit a :class:`DeprecationWarning` —
    and every flat spelling remains readable as a property
    (``config.checkpoint_every`` == ``config.checkpoint.every``), so
    existing call sites keep working unchanged.
    """

    def __init__(
        self,
        seed: int = 2002,
        test_cases: Optional[Sequence[Any]] = None,
        jobs: int = 1,
        backend: Optional[str] = None,
        event_log_path: Optional[str] = None,
        checkpoint: Optional[CheckpointPolicy] = None,
        fault_tolerance: Optional[FaultTolerancePolicy] = None,
        fastforward: Optional[FastForwardPolicy] = None,
        integrity: Optional[IntegrityPolicy] = None,
        sampling: Optional[AdaptivePolicy] = None,
        vector: Optional["VectorPolicy"] = None,
        **flat: Any,
    ) -> None:
        unknown = sorted(set(flat) - set(_FLAT_FIELDS))
        if unknown:
            raise CampaignError(
                f"unknown CampaignConfig fields: {', '.join(unknown)}"
            )
        explicit: Dict[str, Any] = {
            "checkpoint": checkpoint,
            "fault_tolerance": fault_tolerance,
            "fastforward": fastforward,
            "integrity": integrity,
            "sampling": sampling,
            "vector": vector,
        }
        overrides: Dict[str, Dict[str, Any]] = {
            group: {} for group in _POLICY_TYPES
        }
        legacy: List[str] = []
        for name, value in flat.items():
            group, attr = _FLAT_FIELDS[name]
            if explicit[group] is not None:
                raise CampaignError(
                    f"{name}= conflicts with the explicit {group}= "
                    f"policy; set {group}.{attr} instead"
                )
            overrides[group][attr] = value
            if name not in _FLAT_NO_WARN:
                legacy.append(name)
        if legacy:
            warnings.warn(
                f"flat CampaignConfig fields "
                f"({', '.join(sorted(legacy))}) are deprecated; pass "
                f"nested policies (CheckpointPolicy, "
                f"FaultTolerancePolicy, FastForwardPolicy, "
                f"IntegrityPolicy, AdaptivePolicy) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        #: campaign RNG seed (the paper's campaigns use 2002).
        self.seed = seed
        #: test cases to cycle over; ``None`` = the driver's default.
        self.test_cases = test_cases
        #: worker processes; 1 = serial execution.
        self.jobs = jobs
        #: ``"serial"`` or ``"process"``; ``None`` selects from jobs.
        self.backend = backend
        #: JSONL run-event log; ``None`` disables file event logging.
        self.event_log_path = event_log_path
        for group, policy_type in _POLICY_TYPES.items():
            policy = explicit[group]
            if policy is None:
                policy = policy_type(**overrides[group])
            object.__setattr__(self, group, policy)
        if self.jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {self.jobs}")
        if self.backend is not None and self.backend not in BACKENDS:
            raise CampaignError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )

    # -- resolution helpers ---------------------------------------------
    def resolved_backend(self) -> str:
        if self.backend is not None:
            return self.backend
        return "process" if self.jobs > 1 else "serial"

    def resolved_watchdog(self) -> float:
        """Seconds of result silence after which the pool is broken."""
        if self.fault_tolerance.pool_watchdog_s is not None:
            return self.fault_tolerance.pool_watchdog_s
        if self.fault_tolerance.task_timeout is not None:
            return self.fault_tolerance.task_timeout * 2 + 5.0
        return DEFAULT_POOL_WATCHDOG_S

    def __eq__(self, other: Any) -> Any:
        if not isinstance(other, CampaignConfig):
            return NotImplemented
        return self.__dict__ == other.__dict__

    def __repr__(self) -> str:
        return (
            f"CampaignConfig(seed={self.seed!r}, jobs={self.jobs!r}, "
            f"backend={self.backend!r}, "
            f"event_log_path={self.event_log_path!r}, "
            f"checkpoint={self.checkpoint!r}, "
            f"fault_tolerance={self.fault_tolerance!r}, "
            f"fastforward={self.fastforward!r}, "
            f"integrity={self.integrity!r}, sampling={self.sampling!r}, "
            f"vector={self.vector!r})"
        )


def _flat_property(group: str, attr: str) -> property:
    def read(self: CampaignConfig) -> Any:
        return getattr(getattr(self, group), attr)

    read.__doc__ = f"Read-only alias of ``{group}.{attr}``."
    return property(read)


for _flat_name, (_group, _attr) in _FLAT_FIELDS.items():
    setattr(CampaignConfig, _flat_name, _flat_property(_group, _attr))
del _flat_name, _group, _attr


def fingerprint_of(*parts: Any) -> str:
    """Stable fingerprint of a campaign's identity for checkpointing.

    The package version and the checkpoint schema revision are salted
    in: resuming a checkpoint written by different code is rejected as
    a fingerprint mismatch instead of silently merging stale results.
    """
    try:
        from repro import __version__ as version
    except Exception:  # pragma: no cover - the package always has one
        version = "unknown"
    salt = [f"repro={version}", f"schema={CHECKPOINT_SCHEMA_REVISION}"]
    blob = json.dumps(
        salt + [str(p) for p in parts], separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ======================================================================
# Structured task failure (poison-task quarantine).
# ======================================================================
_FAILURE_MARKER = "__task_failure__"


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its attempt budget and was quarantined.

    Takes the task's slot in the executor's result list (and in the
    checkpoint) instead of aborting the campaign; aggregation code
    skips these records and surfaces them as
    ``result.task_failures``.
    """

    #: task index within the campaign's pre-drawn task list.
    index: int
    #: ``"exception"``, ``"timeout"`` or ``"lost"`` (worker death).
    kind: str
    #: human-readable description of the last error.
    error: str
    #: attempts consumed before quarantine.
    attempts: int

    def to_json(self) -> Dict[str, Any]:
        return {
            _FAILURE_MARKER: 1,
            "index": self.index,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "TaskFailure":
        return cls(
            index=int(payload["index"]),
            kind=str(payload["kind"]),
            error=str(payload["error"]),
            attempts=int(payload["attempts"]),
        )

    @staticmethod
    def is_encoded(value: Any) -> bool:
        return isinstance(value, dict) and value.get(_FAILURE_MARKER) == 1


# ======================================================================
# Run-event log.
# ======================================================================
class RunEventLog:
    """Append-only JSONL log of campaign run events.

    One JSON object per line: ``{ts, campaign, event, ...fields}``.
    Event names: ``run_start``, ``task_start`` (serial backend only),
    ``task_finish``, ``task_error``, ``task_retry``, ``task_failure``
    (quarantine), ``checkpoint_flush``, ``pool_broken``,
    ``pool_respawn``, ``backend_degraded``, ``integrity_violation``,
    ``worker_drift``, ``run_end``.  With no path, every call is a
    no-op.

    Every record is flushed to the OS as it is written, so a crashed
    campaign's log ends at the event that preceded the death, not at
    an arbitrary buffer boundary.  Set ``REPRO_EVENT_LOG_FSYNC=1`` to
    additionally ``fsync`` per record — durable against power loss,
    at a per-event cost only forensics-critical runs should pay.

    *sink*, when given, mirrors every record into a
    :class:`~repro.fi.store.ResultStore` (the sqlite backend persists
    them in its ``events`` table; the JSON backend ignores them), so
    a results database carries its own event history.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        campaign: str = "",
        sink: Optional[ResultStore] = None,
    ):
        self.path = path
        self.campaign = campaign
        self.sink = sink
        self._handle = None
        self._fsync = os.environ.get("REPRO_EVENT_LOG_FSYNC") == "1"
        if path:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "a", encoding="utf-8")

    @property
    def enabled(self) -> bool:
        return self._handle is not None or self.sink is not None

    def emit(self, event: str, **fields: Any) -> None:
        if self._handle is None and self.sink is None:
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 3),
            "campaign": self.campaign,
            "event": event,
        }
        record.update(fields)
        if self._handle is not None:
            try:
                self._handle.write(
                    json.dumps(record, separators=(",", ":"), default=str)
                    + "\n"
                )
                self._handle.flush()
                if self._fsync:
                    os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass  # never let observability take the campaign down
        if self.sink is not None:
            try:
                self.sink.log_event(record)
            except Exception:
                pass  # observability must never take the campaign down

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


# ======================================================================
# Telemetry.
# ======================================================================
@dataclass
class CampaignTelemetry:
    """Execution statistics of one campaign run."""

    campaign: str
    backend: str
    jobs: int
    total_runs: int = 0
    executed_runs: int = 0
    resumed_runs: int = 0
    wall_s: float = 0.0
    busy_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: re-dispatched attempts (a task retried twice counts twice).
    retries: int = 0
    #: quarantined tasks (structured :class:`TaskFailure` results).
    failures: int = 0
    #: attempts that exceeded the per-task timeout.
    timeouts: int = 0
    #: worker pools torn down and rebuilt after breakage.
    pool_respawns: int = 0
    #: True once the pool could not be rebuilt and the remaining
    #: tasks ran on the serial backend.
    degraded: bool = False
    #: injected runs started from a restored golden checkpoint.
    ff_restores: int = 0
    #: injected runs that reconverged with the golden run and exited
    #: early (suffix skipped).
    ff_resyncs: int = 0
    #: simulation ticks skipped by fast-forwarding (prefix + suffix).
    ff_ticks_saved: int = 0
    #: checkpoint tracks recorded (one extra golden-style run each).
    ff_tracks: int = 0
    #: sampled runs re-executed full-length for the audit replay.
    audits: int = 0
    #: audited runs whose full replay diverged from the fast-forward
    #: result (each one is a recorded :class:`IntegrityViolation`).
    audit_mismatches: int = 0
    #: mismatched runs healed by adopting the full-replay result.
    audit_repairs: int = 0
    #: pools torn down because a worker's golden digest diverged.
    drift_events: int = 0
    #: checkpoint records dropped on load after a digest mismatch.
    checkpoint_rejects: int = 0
    #: result-store backend persisting the campaign ("" = no store).
    store_backend: str = ""
    #: store flushes that actually wrote data.
    store_flushes: int = 0
    #: store flushes skipped because no new records had arrived.
    store_flushes_skipped: int = 0
    #: records persisted by the store (new records, not rewrites).
    store_records_written: int = 0
    #: payload bytes the store wrote (whole-document rewrites for the
    #: JSON backend, streamed inserts for sqlite).
    store_bytes_written: int = 0
    #: runs answered by the vectorized batch core.
    vec_rows: int = 0
    #: task groups the vectorized core advanced together.
    vec_groups: int = 0
    #: row-ticks advanced in lockstep (rows x ticks, summed).
    vec_batched_ticks: int = 0
    #: rows retired from a batch to the scalar path after their
    #: control flow diverged from the golden trace.
    vec_retired_rows: int = 0
    #: batch-eligible tasks that fell back to the scalar runner
    #: (audit-selected, chaos env, retired, or unsupported).
    vec_scalar_fallbacks: int = 0
    #: groups whose rows span more than one test case (cross-case
    #: batching sharing one lockstep pass over several goldens).
    vec_cross_case_groups: int = 0
    #: total row slots the dispatched groups offered (groups x width);
    #: ``vec_rows / vec_group_capacity`` is the group occupancy.
    vec_group_capacity: int = 0
    #: True when the run was scheduled by the adaptive sampler.
    adaptive: bool = False
    #: strata the adaptive sampler scheduled.
    strata: int = 0
    #: strata stopped before exhausting their injection budget.
    strata_early: int = 0
    #: pre-drawn injections never dispatched thanks to early stopping.
    runs_saved: int = 0
    #: stop reason -> stratum count (zero/saturated/halfwidth/budget).
    stop_reasons: Dict[str, int] = dataclasses_field(default_factory=dict)

    @property
    def runs_per_sec(self) -> float:
        return self.executed_runs / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def vec_occupancy(self) -> float:
        """Fraction of dispatched batch slots that carried a row."""
        if not self.vec_group_capacity:
            return 0.0
        return self.vec_rows / self.vec_group_capacity

    @property
    def worker_utilization(self) -> float:
        """Fraction of worker capacity spent inside tasks."""
        capacity = self.wall_s * self.jobs
        return min(1.0, self.busy_s / capacity) if capacity > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def faulted(self) -> bool:
        return bool(
            self.retries or self.failures or self.timeouts
            or self.pool_respawns or self.degraded
        )

    def render(self) -> str:
        text = (
            f"[{self.campaign}] {self.executed_runs}/{self.total_runs} runs"
            f" ({self.resumed_runs} resumed) in {self.wall_s:.2f} s"
            f" | {self.runs_per_sec:.1f} runs/s"
            f" | backend={self.backend} jobs={self.jobs}"
            f" util={self.worker_utilization:.0%}"
            f" | golden cache {self.cache_hits} hit"
            f" / {self.cache_misses} miss"
            f" ({self.cache_hit_rate:.0%})"
        )
        if self.ff_restores or self.ff_resyncs or self.ff_tracks:
            text += (
                f" | fast-forward {self.ff_ticks_saved} ticks saved"
                f" ({self.ff_restores} restores, {self.ff_resyncs} resyncs,"
                f" {self.ff_tracks} tracks)"
            )
        if (
            self.audits or self.audit_mismatches
            or self.drift_events or self.checkpoint_rejects
        ):
            text += (
                f" | integrity audits={self.audits}"
                f" mismatches={self.audit_mismatches}"
                f" repairs={self.audit_repairs}"
            )
            if self.drift_events:
                text += f" drift={self.drift_events}"
            if self.checkpoint_rejects:
                text += f" ckpt-rejects={self.checkpoint_rejects}"
        if self.store_backend:
            text += (
                f" | store={self.store_backend}"
                f" flushes={self.store_flushes}"
                f"+{self.store_flushes_skipped} skipped,"
                f" {self.store_records_written} records"
                f" / {self.store_bytes_written} B"
            )
        if self.vec_rows or self.vec_groups or self.vec_scalar_fallbacks:
            text += (
                f" | vector {self.vec_rows} rows"
                f" in {self.vec_groups} groups"
                f" ({self.vec_batched_ticks} batched ticks,"
                f" {self.vec_retired_rows} retired,"
                f" {self.vec_scalar_fallbacks} scalar)"
            )
            if self.vec_group_capacity:
                text += (
                    f" occupancy={self.vec_occupancy:.0%}"
                    f" cross-case={self.vec_cross_case_groups}"
                )
        if self.adaptive:
            text += (
                f" | adaptive runs_saved={self.runs_saved}"
                f" ({self.strata_early}/{self.strata} strata early"
            )
            if self.stop_reasons:
                reasons = " ".join(
                    f"{reason}={count}"
                    for reason, count in sorted(self.stop_reasons.items())
                )
                text += f"; {reasons}"
            text += ")"
        if self.faulted:
            text += (
                f" | retries={self.retries} failures={self.failures}"
                f" timeouts={self.timeouts} respawns={self.pool_respawns}"
            )
            if self.degraded:
                text += " degraded=serial"
        return text


# ======================================================================
# Golden-run cache.
# ======================================================================
class GoldenRunCache:
    """Process-wide golden-run cache with single-flight computation.

    Keyed by ``(target name, factory, case id)``.  The factory object
    itself is part of the key — two factories building differently
    configured simulators of the same system never alias — and the
    cache holds a strong reference to it while any of its runs are
    cached, so a live key is never reused for a different
    configuration.

    The cache is bounded: at most ``max_runs`` golden runs are kept,
    evicted least-recently-used.  When a factory's last cached run is
    evicted, its store and the factory reference are dropped too, and
    single-flight locks are pruned as soon as their computation
    completes — long sessions over many targets stay bounded.
    """

    def __init__(self, max_runs: int = 512) -> None:
        if max_runs < 1:
            raise CampaignError(f"max_runs must be >= 1, got {max_runs}")
        self.max_runs = max_runs
        self._runs: "OrderedDict[Tuple[str, int, int], GoldenRun]" = (
            OrderedDict()
        )
        self._flight: Dict[Tuple[str, int, int], threading.Lock] = {}
        self._stores: Dict[Tuple[str, int], GoldenRunStore] = {}
        self._factories: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._runs)

    def store_for(self, target: str, factory) -> "CachedGoldenStore":
        """A :class:`GoldenRunStore`-compatible view for one target."""
        return CachedGoldenStore(self, target, factory)

    def get(self, target: str, factory, test_case) -> GoldenRun:
        key = (target, id(factory), test_case.case_id)
        with self._lock:
            run = self._runs.get(key)
            if run is not None:
                self._runs.move_to_end(key)
                self.hits += 1
                return run
            flight = self._flight.setdefault(key, threading.Lock())
        with flight:
            with self._lock:
                run = self._runs.get(key)
                if run is not None:
                    # someone else computed it while we waited
                    self._runs.move_to_end(key)
                    self._flight.pop(key, None)
                    self.hits += 1
                    return run
                self._factories[id(factory)] = factory
                store = self._stores.setdefault(
                    (target, id(factory)), GoldenRunStore(factory)
                )
            run = store.get(test_case)
            with self._lock:
                self._runs[key] = run
                self.misses += 1
                self._flight.pop(key, None)
                self._evict_locked()
            return run

    def _evict_locked(self) -> None:
        """Drop LRU runs beyond the bound; GC orphaned stores/factories."""
        while len(self._runs) > self.max_runs:
            (target, factory_id, _), _ = self._runs.popitem(last=False)
            if not any(
                k[0] == target and k[1] == factory_id for k in self._runs
            ):
                self._stores.pop((target, factory_id), None)
            if not any(k[1] == factory_id for k in self._runs):
                self._factories.pop(factory_id, None)

    def clear(self) -> None:
        with self._lock:
            self._runs.clear()
            self._flight.clear()
            self._stores.clear()
            self._factories.clear()
            self.hits = 0
            self.misses = 0

    def resize(self, max_runs: int) -> None:
        """Re-bound the cache (long-running daemons tune memory);
        shrinking evicts least-recently-used runs immediately."""
        if max_runs < 1:
            raise CampaignError(f"max_runs must be >= 1, got {max_runs}")
        with self._lock:
            self.max_runs = max_runs
            self._evict_locked()


class CachedGoldenStore:
    """Adapter giving one (target, factory) pair the
    :class:`GoldenRunStore` interface over the shared cache."""

    def __init__(self, cache: GoldenRunCache, target: str, factory):
        self._cache = cache
        self.target = target
        self.factory = factory

    def get(self, test_case) -> GoldenRun:
        return self._cache.get(self.target, self.factory, test_case)


#: the default process-wide cache used by all campaign drivers.
golden_cache = GoldenRunCache()


# ======================================================================
# Worker-side trampoline for the fork pool.
#
# Each running campaign registers an :class:`_ActiveCampaign` (its
# runner, fault-tolerance knobs, chaos hooks and drift sentinel) in
# the process-wide ``_ACTIVE`` registry *before* its pool is forked;
# workers inherit the whole registry through the fork and look their
# campaign up by the key travelling inside each work item, so only
# (key, index, attempt) tuples and JSON-encodable payloads ever cross
# the pipe.  This keeps factories, simulators and closures out of
# pickle entirely — and, because every campaign owns its own registry
# entry, any number of campaigns can run concurrently in one process
# (the service daemon schedules many) without clobbering each other's
# runner.  Worker exceptions are converted to in-band error payloads,
# so anything escaping the result iterator is pool infrastructure
# breakage, not a task failure.
# ======================================================================
@dataclass
class _ActiveCampaign:
    """One campaign's worker-side execution context."""

    runner: Callable[[int], Any]
    timeout: Optional[float] = None
    #: (fail_index, kill_index) chaos hooks; see ``_chaos_from_env``.
    chaos: Tuple[Optional[int], Optional[int]] = (None, None)
    #: the drift sentinel published before the pool forks: a callable
    #: computing a fresh golden-run digest, and the parent's digest.
    sentinel: Optional[Tuple[Callable[[], str], str]] = None


_ACTIVE: Dict[str, _ActiveCampaign] = {}
_ACTIVE_LOCK = threading.Lock()
_ACTIVE_SEQ = itertools.count(1)


class _TaskTimeout(Exception):
    """Raised inside a task when its wall-clock budget expires."""


def _chaos_from_env() -> Tuple[Optional[int], Optional[int]]:
    """Test-only fault hooks, read from the environment.

    ``REPRO_CHAOS_FAIL_INDEX=N`` makes the first attempt of task N
    raise; ``REPRO_CHAOS_KILL_INDEX=N`` makes the first attempt of
    task N hard-kill its worker process (process backend only).  Used
    by the chaos tests and the CI chaos step to exercise the
    retry/quarantine/respawn machinery against a real campaign.
    """

    def _index(name: str) -> Optional[int]:
        value = os.environ.get(name)
        if value is None:
            return None
        try:
            return int(value)
        except ValueError:
            return None

    return (
        _index("REPRO_CHAOS_FAIL_INDEX"),
        _index("REPRO_CHAOS_KILL_INDEX"),
    )


@contextmanager
def _task_alarm(seconds: Optional[float]) -> Iterator[None]:
    """Interrupt the current task after *seconds* via SIGALRM.

    Only armed in the main thread of a process (the only place Python
    delivers signals); elsewhere the timeout is not enforced rather
    than broken.
    """
    if (
        not seconds
        or not hasattr(signal, "setitimer")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_alarm(signum, frame):
        raise _TaskTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    started = time.monotonic()
    prev_value, prev_interval = signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if prev_value:
            # an outer timer (e.g. a batch-level deadline wrapping this
            # per-task timeout) was running: re-arm it with whatever
            # budget it has left, after its handler is back in place so
            # the rest of its deadline fires into the right handler
            remaining = prev_value - (time.monotonic() - started)
            signal.setitimer(
                signal.ITIMER_REAL, max(remaining, 1e-6), prev_interval
            )


def _worker_init() -> None:
    """Pool-worker initializer: restore default signal handling.

    Workers are forked from whatever process runs the campaign — a
    CLI, a test, or a service job child that converts SIGTERM into
    ``KeyboardInterrupt`` for its own flush-on-drain path.  A worker
    must not inherit that conversion (or a custom SIGINT handler):
    ``Pool.terminate`` SIGTERMs workers on every normal teardown, and
    an inherited handler turns that routine kill into a spurious
    traceback.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _sentinel_probe(item: Tuple[str, int]) -> str:
    """Worker-side half of the drift sentinel: a fresh golden digest.

    Dispatched to a new pool before any real task.  The digest is
    computed from scratch (no caches), so it reflects what *this*
    worker's arithmetic and code actually produce.
    ``REPRO_CHAOS_DRIFT_WORKER=1`` deliberately corrupts the probe —
    in forked children only — to exercise the broken-pool path.
    """
    key, _ = item
    compute, _ = _ACTIVE[key].sentinel  # type: ignore[union-attr]
    digest = compute()
    if os.environ.get("REPRO_CHAOS_DRIFT_WORKER") == "1":
        digest = f"chaos-drift-{digest[:8]}"
    return digest


def _execute_attempt(
    active: _ActiveCampaign, index: int, attempt: int
) -> Tuple[int, Dict, float]:
    """One attempt of one task; errors become in-band payloads."""
    started = time.perf_counter()
    fail_index, _ = active.chaos
    ff_before = ff_stats.as_tuple()
    integ_before = integrity_stats.as_tuple()
    vec_before = vector_stats.as_tuple()
    # a batched runner answers a whole group of runs from the first
    # task that touches it, so that attempt gets the group's worth of
    # timeout budget
    timeout = active.timeout
    scale_of = getattr(active.runner, "timeout_scale_for", None)
    if timeout is not None and scale_of is not None:
        timeout = timeout * max(1, scale_of(index))
    try:
        if fail_index is not None and index == fail_index and attempt == 1:
            raise RuntimeError(f"chaos: injected failure at task {index}")
        with _task_alarm(timeout):
            result = active.runner(index)
        payload: Dict[str, Any] = {"ok": result}
        # fast-forward savings travel beside the result — never inside
        # it, so checkpoints and aggregates stay bit-identical whether
        # fast-forwarding is on or off
        ff_delta = tuple(
            after - before
            for before, after in zip(ff_before, ff_stats.as_tuple())
        )
        if any(ff_delta):
            payload["ff"] = ff_delta
        # vectorized-core counters travel the same way
        vec_delta = tuple(
            after - before
            for before, after in zip(vec_before, vector_stats.as_tuple())
        )
        if any(vec_delta):
            payload["vec"] = vec_delta
    except _TaskTimeout:
        payload = {
            "err": f"timed out after {timeout:g} s",
            "kind": "timeout",
        }
    except IntegrityError as exc:
        # a strict-policy audit mismatch: deterministic, so a retry
        # would only repeat it — the parent aborts instead
        payload = {"err": str(exc), "kind": "integrity"}
    except Exception as exc:
        payload = {"err": f"{type(exc).__name__}: {exc}", "kind": "exception"}
    # audit counters and structured violations travel beside the
    # result, like the fast-forward delta above
    integ_delta = tuple(
        after - before
        for before, after in zip(integ_before, integrity_stats.as_tuple())
    )
    if any(integ_delta):
        payload["integ"] = integ_delta
    violations = drain_violations()
    if violations:
        payload["viol"] = [violation.to_json() for violation in violations]
    return index, payload, time.perf_counter() - started


def _pool_task(key: str, item: Tuple[int, int]) -> Tuple[int, Dict, float]:
    index, attempt = item
    active = _ACTIVE[key]
    _, kill_index = active.chaos
    if kill_index is not None and index == kill_index and attempt == 1:
        os._exit(17)  # simulate a hard worker death (chaos testing)
    return _execute_attempt(active, index, attempt)


def _pool_chunk(
    work: Tuple[str, List[Tuple[int, int]]]
) -> List[Tuple[int, Dict, float]]:
    """A batch of tasks as one pool work item.

    Chunking is done here rather than via the pool's ``chunksize``:
    ``imap_unordered(..., chunksize>1)`` returns a plain generator
    without the ``next(timeout)`` needed by the watchdog, so the pool
    always dispatches single work items and each item carries a batch
    (prefixed by its campaign's registry key).
    """
    key, items = work
    return [_pool_task(key, item) for item in items]


def _backoff_s(config: CampaignConfig, attempt: int) -> float:
    """Exponential backoff before the given (>= 2nd) attempt."""
    if attempt <= 1 or config.retry_backoff_s <= 0:
        return 0.0
    return min(config.retry_backoff_s * (2 ** (attempt - 2)), MAX_BACKOFF_S)


def decorrelated_backoff(
    base: float,
    previous: float,
    rng: random.Random,
    cap: float = MAX_BACKOFF_S,
) -> float:
    """One decorrelated-jitter backoff sleep, in seconds.

    The classic "exponential backoff and decorrelated jitter"
    recurrence: each sleep is drawn uniformly from ``[base, 3 *
    previous]`` (clamped to ``cap``), so concurrently retrying
    clients spread out instead of stampeding in lockstep, while the
    expected sleep still grows geometrically.  A non-positive *base*
    disables backoff entirely (returns 0).
    """
    if base <= 0:
        return 0.0
    return min(cap, rng.uniform(base, max(base, previous * 3.0)))


# ======================================================================
# The executor.
# ======================================================================
class CampaignExecutor:
    """Maps a pure task function over a task list, with checkpointing
    and fault tolerance.

    ``runner(index)`` must be a pure function of the pre-drawn task
    parameters at ``index`` (no shared RNG, no mutation of campaign
    state) and must return a JSON-encodable value when checkpointing
    is enabled.  Results are returned in task order regardless of the
    completion order, so parallel execution is bit-identical to
    serial.

    A task that raises, times out or kills its worker is retried up
    to ``config.retries`` times and then quarantined: its result slot
    holds a :class:`TaskFailure` instead of aborting the run.  The
    checkpoint is flushed on every exit path.
    """

    def __init__(
        self,
        config: Optional[CampaignConfig] = None,
        campaign: str = "campaign",
        cache: Optional[GoldenRunCache] = None,
    ):
        self.config = config or CampaignConfig()
        self.campaign = campaign
        self.cache = cache if cache is not None else golden_cache
        #: telemetry of the most recent :meth:`run_tasks` call.
        self.telemetry: Optional[CampaignTelemetry] = None
        #: integrity violations observed by the most recent run
        #: (audit mismatches, rejected checkpoint records, drift).
        self.violations: List[IntegrityViolation] = []
        self._events = RunEventLog(None, campaign)
        self._store: Optional[ResultStore] = None
        # cache and fast-forward stats count from executor
        # construction, so golden runs and checkpoint tracks built
        # while the campaign pre-draws its parameters show up
        self._cache_hits0 = self.cache.hits
        self._cache_misses0 = self.cache.misses
        self._ff0 = ff_stats.as_tuple()
        self._integ0 = integrity_stats.as_tuple()
        self._vec0 = vector_stats.as_tuple()

    # ------------------------------------------------------------------
    # The result store.
    # ------------------------------------------------------------------
    @property
    def store(self) -> Optional[ResultStore]:
        """The campaign's result store, opened lazily from
        ``config.checkpoint`` (``None`` when persistence is off).

        The store's backend follows the checkpoint path's suffix
        (``.db``/``.sqlite``/``.sqlite3`` → sqlite, anything else →
        the legacy JSON document) unless ``checkpoint.backend`` pins
        one.  The instance is kept for the executor's lifetime, so
        adaptive rounds and repeated :meth:`run_tasks` calls share
        one verified view of the campaign's records.
        """
        if self._store is None and self.config.checkpoint.path:
            self._store = open_store(
                self.config.checkpoint.path,
                self.config.checkpoint.backend,
            )
        return self._store

    def close(self) -> None:
        """Flush and release the result store (idempotent)."""
        if self._store is not None:
            self._store.close()
            self._store = None

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        runner: Callable[[int], Any],
        n_tasks: int,
        fingerprint: str = "",
        sentinel: Optional[Callable[[], str]] = None,
        indices: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        """Execute ``runner`` over ``range(n_tasks)``; results in order.

        Quarantined tasks yield :class:`TaskFailure` entries in the
        returned list; everything else is the runner's return value.

        *sentinel*, when given (and the integrity policy is not
        ``off``), is a callable computing a fresh golden-run digest;
        before any tasks are dispatched to a process pool, every
        worker runs it and the parent compares the digests with its
        own.  A divergent worker marks the pool broken — it is
        respawned (and eventually degraded to serial) without any
        task attempt budgets being consumed.

        *indices*, when given, restricts execution to that subset of
        the task space (the adaptive sampler dispatches one batch per
        call this way); the returned list is aligned with *indices*.
        The checkpoint keeps indexing the full ``n_tasks`` space, so
        batched and whole-campaign runs share checkpoints and resume
        interchangeably.
        """
        config = self.config
        self.violations = []
        store = self.store
        checkpointing = store is not None
        events = RunEventLog(
            config.event_log_path, self.campaign, sink=store
        )
        self._events = events

        def on_violation(violation: IntegrityViolation) -> None:
            self.violations.append(violation)
            events.emit(
                "integrity_violation",
                kind=violation.kind,
                index=violation.index,
                detail=violation.detail,
            )

        checkpoint_rejects = 0
        prior: Set[int] = set()
        if store is not None:
            try:
                checkpoint_rejects = store.open_campaign(
                    self.campaign,
                    fingerprint,
                    n_tasks,
                    policy=config.integrity.policy,
                    on_violation=on_violation,
                )
            except IntegrityError:
                events.close()
                self._events = RunEventLog(None, self.campaign)
                self.close()
                raise
            prior = store.completed_indices()
        done: Dict[int, Any] = {}
        if indices is None:
            wanted: Sequence[int] = range(n_tasks)
        else:
            wanted = list(indices)
            for index in wanted:
                if not 0 <= index < n_tasks:
                    raise CampaignError(
                        f"task index {index} outside the campaign's "
                        f"{n_tasks}-task space"
                    )
        resumed = sum(1 for i in wanted if i in prior)
        pending = [i for i in wanted if i not in prior]
        # report the backend actually used: the process backend falls
        # back to serial when fork is unavailable or the workload is
        # too small to be worth a pool
        backend = config.resolved_backend()
        if backend == "process" and (
            "fork" not in multiprocessing.get_all_start_methods()
            or len(pending) <= 1
        ):
            backend = "serial"
        telemetry = CampaignTelemetry(
            campaign=self.campaign,
            backend=backend,
            jobs=config.jobs if backend == "process" else 1,
            total_runs=n_tasks,
            resumed_runs=resumed,
            checkpoint_rejects=checkpoint_rejects,
        )
        since_flush = 0
        attempts: Dict[int, int] = {index: 0 for index in pending}
        started = time.perf_counter()
        start_fields: Dict[str, Any] = {
            "backend": backend,
            "jobs": telemetry.jobs,
            "total": n_tasks,
            "resumed": resumed,
        }
        if indices is not None:
            start_fields["batch"] = len(wanted)
        events.emit("run_start", **start_fields)

        def flush_store() -> None:
            if store is not None and store.flush():
                events.emit(
                    "checkpoint_flush",
                    done=len(store.completed_indices()),
                )

        def record(index: int, value: Any) -> None:
            nonlocal since_flush
            done[index] = value
            if not checkpointing:
                return
            encoded = (
                value.to_json()
                if isinstance(value, TaskFailure)
                else value
            )
            store.put_record(index, encoded)
            since_flush += 1
            if since_flush >= config.checkpoint.every:
                flush_store()
                since_flush = 0

        def absorb_ff(ff_delta: Optional[Tuple[int, ...]]) -> None:
            """Fold a pool worker's fast-forward delta into telemetry.

            Only pool results are absorbed this way: in-process work
            (serial tasks, degraded tasks, track preloads) mutates the
            parent's ``ff_stats`` directly and is accounted once, as
            the process-wide delta, when the run finishes.
            """
            if ff_delta:
                telemetry.ff_restores += ff_delta[0]
                telemetry.ff_resyncs += ff_delta[1]
                telemetry.ff_ticks_saved += ff_delta[2]
                telemetry.ff_tracks += ff_delta[3]

        def absorb_integrity(integ_delta: Optional[Tuple[int, ...]]) -> None:
            """Fold a pool worker's audit counters into telemetry.

            Pool results only, mirroring :func:`absorb_ff`: in-process
            audits mutate the parent's ``integrity_stats`` directly
            and are accounted once, as the process-wide delta, when
            the run finishes.
            """
            if integ_delta:
                telemetry.audits += integ_delta[0]
                telemetry.audit_mismatches += integ_delta[1]
                telemetry.audit_repairs += integ_delta[2]

        def absorb_vec(vec_delta: Optional[Tuple[int, ...]]) -> None:
            """Fold a pool worker's vectorized-core counters into
            telemetry.  Pool results only, mirroring :func:`absorb_ff`.
            """
            if vec_delta:
                telemetry.vec_batched_ticks += vec_delta[0]
                telemetry.vec_retired_rows += vec_delta[1]
                telemetry.vec_groups += vec_delta[2]
                telemetry.vec_rows += vec_delta[3]
                telemetry.vec_scalar_fallbacks += vec_delta[4]
                if len(vec_delta) > 6:
                    telemetry.vec_cross_case_groups += vec_delta[5]
                    telemetry.vec_group_capacity += vec_delta[6]

        def absorb_violations(payload: Dict) -> None:
            """Collect a task's structured violations (any backend).

            Violations are drained exactly once, inside
            :func:`_execute_attempt`, so absorbing them from the
            payload is double-count-free on both backends.
            """
            for encoded in payload.get("viol", ()):
                violation = IntegrityViolation.from_json(encoded)
                self.violations.append(violation)
                events.emit(
                    "integrity_violation",
                    kind=violation.kind,
                    index=violation.index,
                    detail=violation.detail,
                )

        def succeed(index: int, payload: Dict, busy: float) -> None:
            telemetry.executed_runs += 1
            telemetry.busy_s += busy
            absorb_violations(payload)
            record(index, payload["ok"])
            events.emit(
                "task_finish",
                index=index,
                attempt=attempts.get(index, 1),
                busy_s=round(busy, 6),
            )

        def quarantine(index: int, kind: str, error: str) -> None:
            failure = TaskFailure(
                index=index,
                kind=kind,
                error=str(error),
                attempts=max(attempts.get(index, 1), 1),
            )
            telemetry.failures += 1
            record(index, failure)
            events.emit(
                "task_failure",
                index=index,
                kind=kind,
                attempts=failure.attempts,
                error=failure.error,
            )

        def fail_attempt(index: int, payload: Dict, busy: float) -> None:
            """Account one failed attempt; quarantine when exhausted."""
            telemetry.busy_s += busy
            kind = payload.get("kind", "exception")
            absorb_violations(payload)
            if kind == "timeout":
                telemetry.timeouts += 1
            events.emit(
                "task_error",
                index=index,
                attempt=attempts[index],
                kind=kind,
                error=payload.get("err", ""),
            )
            if kind == "integrity":
                # a strict-policy violation is deterministic: retrying
                # replays the identical mismatch, so abort the campaign
                # (the checkpoint still flushes on the way out)
                raise IntegrityError(
                    payload.get("err", "integrity violation")
                )
            if attempts[index] >= config.retries + 1:
                quarantine(index, kind, payload.get("err", ""))

        ft = config.fault_tolerance
        backoff_rng = random.Random(
            ft.backoff_seed if ft.backoff_seed is not None else config.seed
        )
        backoff_prev = config.retry_backoff_s

        def backoff_sleep(attempt: int) -> None:
            """Sleep before a (>= 2nd) retry attempt.

            Jittered retries draw from the decorrelated recurrence so
            campaigns retrying concurrently spread out; with jitter
            off the legacy deterministic exponential ramp applies.
            """
            nonlocal backoff_prev
            if attempt <= 1:
                return
            if not ft.retry_jitter:
                time.sleep(_backoff_s(config, attempt))
                return
            sleep_s = decorrelated_backoff(
                config.retry_backoff_s, backoff_prev, backoff_rng
            )
            backoff_prev = max(sleep_s, config.retry_backoff_s)
            time.sleep(sleep_s)

        def run_serial(indices: Sequence[int]) -> None:
            for index in indices:
                while index not in done:
                    attempts[index] += 1
                    attempt = attempts[index]
                    if attempt > 1:
                        telemetry.retries += 1
                        events.emit(
                            "task_retry", index=index, attempt=attempt
                        )
                        backoff_sleep(attempt)
                    events.emit("task_start", index=index, attempt=attempt)
                    _, payload, busy = _execute_attempt(
                        active, index, attempt
                    )
                    if "ok" in payload:
                        succeed(index, payload, busy)
                    else:
                        fail_attempt(index, payload, busy)

        def verify_pool(pool, watchdog: float) -> Optional[str]:
            """Drift-sentinel check of a fresh pool; ``None`` = healthy.

            Dispatches one probe per worker slot (probes may not land
            one-per-process, but the drift scenarios that matter —
            FP environment drift, mismatched code — affect every
            child of the same parent alike, so any probe detects
            them).  Returns the reason the pool cannot be trusted.
            """
            if active.sentinel is None:
                return None
            _, expected = active.sentinel
            try:
                probes = pool.map_async(
                    _sentinel_probe,
                    [(key, slot) for slot in range(config.jobs)],
                    chunksize=1,
                ).get(watchdog)
            except multiprocessing.TimeoutError:
                return (
                    f"sentinel probes produced no result within the "
                    f"{watchdog:.0f} s watchdog"
                )
            except Exception as exc:
                return f"sentinel probe failed: {type(exc).__name__}: {exc}"
            drifted = [d for d in probes if d != expected]
            if not drifted:
                return None
            telemetry.drift_events += 1
            violation = IntegrityViolation(
                kind="worker_drift",
                campaign=self.campaign,
                detail=(
                    f"{len(drifted)}/{len(probes)} worker golden "
                    f"digests diverged from the parent's"
                ),
                expected=expected,
                observed=drifted[0],
            )
            self.violations.append(violation)
            events.emit(
                "worker_drift",
                drifted=len(drifted),
                probes=len(probes),
                expected=expected,
                observed=drifted[0],
            )
            return violation.detail

        def run_pool(indices: Sequence[int]) -> None:
            context = multiprocessing.get_context("fork")
            respawns_left = config.max_pool_respawns
            watchdog = config.resolved_watchdog()
            remaining = [i for i in indices if i not in done]
            pool = context.Pool(
                processes=config.jobs, initializer=_worker_init
            )
            unhealthy = verify_pool(pool, watchdog)
            try:
                while remaining:
                    if unhealthy is not None:
                        # a drifted pool never ran a task, so no
                        # attempt budget was consumed; tear it down
                        # like any other broken pool
                        pool.terminate()
                        pool.join()
                        events.emit("pool_broken", reason=unhealthy)
                        if respawns_left <= 0:
                            telemetry.degraded = True
                            events.emit(
                                "backend_degraded",
                                reason=(
                                    "pool respawn budget exhausted"
                                ),
                                remaining=len(remaining),
                            )
                            run_serial(remaining)
                            return
                        respawns_left -= 1
                        telemetry.pool_respawns += 1
                        pool = context.Pool(
                            processes=config.jobs, initializer=_worker_init
                        )
                        events.emit(
                            "pool_respawn",
                            jobs=config.jobs,
                            remaining=len(remaining),
                        )
                        unhealthy = verify_pool(pool, watchdog)
                        continue
                    wave_attempt = 1
                    for index in remaining:
                        attempts[index] += 1
                        wave_attempt = max(wave_attempt, attempts[index])
                        if attempts[index] > 1:
                            telemetry.retries += 1
                            events.emit(
                                "task_retry",
                                index=index,
                                attempt=attempts[index],
                            )
                    if wave_attempt > 1:
                        backoff_sleep(wave_attempt)
                    items = [(i, attempts[i]) for i in remaining]
                    plan = getattr(runner, "chunk_plan", None)
                    if plan is not None:
                        # a batched runner answers whole groups of
                        # tasks at once: keep each group inside one
                        # work item so the batch computes in a single
                        # worker instead of once per member
                        attempt_of = dict(items)
                        chunks = [
                            [(i, attempt_of[i]) for i in chunk]
                            for chunk in plan(remaining)
                        ]
                    else:
                        # chunking amortizes pipe traffic, but a lost
                        # worker loses its whole chunk — dispatch
                        # singly once per-task timeouts are in play
                        chunk_n = (
                            1
                            if config.task_timeout is not None
                            else max(1, len(items) // (config.jobs * 8))
                        )
                        chunks = [
                            items[k:k + chunk_n]
                            for k in range(0, len(items), chunk_n)
                        ]
                    iterator = pool.imap_unordered(
                        _pool_chunk, [(key, chunk) for chunk in chunks],
                        chunksize=1,
                    )
                    broken: Optional[str] = None
                    received = 0
                    while received < len(chunks):
                        try:
                            results = iterator.next(watchdog)
                        except StopIteration:
                            break
                        except multiprocessing.TimeoutError:
                            broken = (
                                f"no result within the {watchdog:.0f} s "
                                f"watchdog (worker death or wedged pool)"
                            )
                            break
                        except Exception as exc:
                            broken = (
                                f"pool failure: "
                                f"{type(exc).__name__}: {exc}"
                            )
                            break
                        received += 1
                        for index, payload, busy in results:
                            absorb_integrity(payload.get("integ"))
                            if "ok" in payload:
                                absorb_ff(payload.get("ff"))
                                absorb_vec(payload.get("vec"))
                                succeed(index, payload, busy)
                            else:
                                fail_attempt(index, payload, busy)
                    # in-flight tasks of a broken pool were lost; any
                    # task not done re-enters the next wave until its
                    # attempt budget runs out
                    remaining = []
                    for index in indices:
                        if index in done:
                            continue
                        if attempts[index] >= config.retries + 1:
                            quarantine(
                                index,
                                "lost",
                                "task lost to a worker or pool failure",
                            )
                        else:
                            remaining.append(index)
                    if broken is not None:
                        pool.terminate()
                        pool.join()
                        events.emit("pool_broken", reason=broken)
                        if not remaining:
                            break
                        if respawns_left <= 0:
                            telemetry.degraded = True
                            events.emit(
                                "backend_degraded",
                                reason="pool respawn budget exhausted",
                                remaining=len(remaining),
                            )
                            run_serial(remaining)
                            return
                        respawns_left -= 1
                        telemetry.pool_respawns += 1
                        pool = context.Pool(
                            processes=config.jobs, initializer=_worker_init
                        )
                        events.emit(
                            "pool_respawn",
                            jobs=config.jobs,
                            remaining=len(remaining),
                        )
                        unhealthy = verify_pool(pool, watchdog)
            finally:
                pool.terminate()
                pool.join()

        active = _ActiveCampaign(
            runner=runner,
            timeout=config.task_timeout,
            chaos=_chaos_from_env(),
        )
        if (
            backend == "process"
            and sentinel is not None
            and config.integrity_policy != "off"
        ):
            # the parent's own digest, computed before the fork, is
            # the reference every worker probe is compared against
            active.sentinel = (sentinel, sentinel())
        # the registry key travels inside every pool work item, so
        # workers forked for any concurrently running campaign (late
        # respawns included) resolve their own campaign's context —
        # concurrent campaigns in one process no longer clobber each
        # other's module state
        key = f"{self.campaign}#{next(_ACTIVE_SEQ)}"
        if backend == "process":
            with _ACTIVE_LOCK:
                _ACTIVE[key] = active
        status = "ok"
        try:
            if backend == "process":
                run_pool(pending)
            else:
                run_serial(pending)
        except BaseException as exc:  # KeyboardInterrupt included
            status = type(exc).__name__
            raise
        finally:
            if backend == "process":
                with _ACTIVE_LOCK:
                    _ACTIVE.pop(key, None)
            telemetry.wall_s = time.perf_counter() - started
            telemetry.cache_hits = self.cache.hits - self._cache_hits0
            telemetry.cache_misses = self.cache.misses - self._cache_misses0
            ff_now = ff_stats.as_tuple()
            absorb_ff(
                tuple(
                    after - before
                    for before, after in zip(self._ff0, ff_now)
                )
            )
            self._ff0 = ff_now
            integ_now = integrity_stats.as_tuple()
            absorb_integrity(
                tuple(
                    after - before
                    for before, after in zip(self._integ0, integ_now)
                )
            )
            self._integ0 = integ_now
            vec_now = vector_stats.as_tuple()
            absorb_vec(
                tuple(
                    after - before
                    for before, after in zip(self._vec0, vec_now)
                )
            )
            self._vec0 = vec_now
            # the no-lost-progress guarantee: flush on every exit path
            if store is not None:
                flush_store()
                telemetry.store_backend = store.backend
                telemetry.store_flushes = store.stats.flushes
                telemetry.store_flushes_skipped = (
                    store.stats.skipped_flushes
                )
                telemetry.store_records_written = (
                    store.stats.records_written
                )
                telemetry.store_bytes_written = store.stats.bytes_written
            self.telemetry = telemetry
            events.emit(
                "run_end",
                status=status,
                executed=telemetry.executed_runs,
                resumed=telemetry.resumed_runs,
                retries=telemetry.retries,
                failures=telemetry.failures,
                timeouts=telemetry.timeouts,
                respawns=telemetry.pool_respawns,
                degraded=telemetry.degraded,
                audits=telemetry.audits,
                audit_mismatches=telemetry.audit_mismatches,
                audit_repairs=telemetry.audit_repairs,
                drift_events=telemetry.drift_events,
                checkpoint_rejects=telemetry.checkpoint_rejects,
                violations=len(self.violations),
                vec_rows=telemetry.vec_rows,
                vec_groups=telemetry.vec_groups,
                vec_cross_case_groups=telemetry.vec_cross_case_groups,
                vec_occupancy=round(telemetry.vec_occupancy, 4),
                wall_s=round(telemetry.wall_s, 3),
            )
            events.close()
            self._events = RunEventLog(None, self.campaign)
            if status != "ok":
                # a failed campaign must not leave a hot WAL journal
                # (or any open store handle) behind; the store reopens
                # lazily if the executor is reused after the error
                self.close()
        output: List[Any] = []
        for index in wanted:
            if index in done:
                output.append(done[index])
                continue
            # resumed records are fetched from the store lazily, so
            # the full result set is never materialized twice
            value = store.get_record(index)
            if TaskFailure.is_encoded(value):
                value = TaskFailure.from_json(value)
            output.append(value)
        return output
