"""Result-integrity layer: content digests, audit replay, sentinels.

Every optimization added to the campaign runner — process pools,
golden-run caches, checkpoint/resume, the snapshot fast-forward
engine — claims to be invisible: "bit-identical to a serial full
replay".  Until now that claim was asserted only by the test suite.
This module verifies it at runtime, cheaply and by sampling:

* **Canonical content digests.**  :func:`canonical_digest` maps any
  JSON-compatible value to a sha256 over a canonical byte encoding:
  floats are hashed by their IEEE-754 bit pattern (all NaNs collapse
  to one canonical NaN; ``-0.0`` stays distinct from ``0.0``; ints
  never alias floats), dictionary keys are stringified and sorted,
  tuples alias lists.  The encoding is chosen so that a value and its
  ``json.loads(json.dumps(value))`` round trip digest identically —
  a digest computed in a worker can be re-verified against a record
  loaded from a checkpoint file.
* **Sampled audit replay.**  :class:`RunAuditor` re-executes a
  seeded, configurable fraction of fast-forwarded injected runs
  full-length from tick 0 and field-diffs the two results.  A
  mismatch is an :class:`IntegrityViolation`; the ``strict`` policy
  raises, ``repair`` adopts the full-replay result (and disables
  fast-forwarding after repeated violations), ``off`` skips auditing.
* **Worker drift sentinels.**  :func:`golden_sentinel` builds the
  probe a forked pool worker runs at startup: digest a locally
  computed golden run and compare it with the parent's.  A divergent
  digest (FP environment drift, mismatched code) marks the worker's
  pool broken before any of its results are merged.

Counters live in the process-local :data:`integrity_stats` (mirroring
:data:`~repro.fi.snapshot.ff_stats`); pool workers ship the per-task
delta — and any structured violations — home beside the task result.
"""

from __future__ import annotations

import copy
import hashlib
import math
import os
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import IntegrityError

__all__ = [
    "DEFAULT_POLICY",
    "POLICIES",
    "IntegrityStats",
    "IntegrityViolation",
    "RunAuditor",
    "canonical_digest",
    "drain_violations",
    "field_diff",
    "golden_sentinel",
    "integrity_stats",
    "push_violation",
    "run_digest",
]

#: integrity policies, in decreasing strictness.  ``strict`` raises an
#: :class:`~repro.errors.IntegrityError` on any violation; ``repair``
#: substitutes a trusted recomputation and keeps going; ``off``
#: disables verification entirely.
POLICIES = ("strict", "repair", "off")

#: default policy: self-heal without taking the campaign down.
DEFAULT_POLICY = "repair"

#: audit mismatches tolerated in one process before the auditor stops
#: trusting the fast-forward engine and replays everything full-length.
DEFAULT_DISABLE_AFTER = 3


# ======================================================================
# Canonical content digests.
# ======================================================================
#: every NaN payload collapses to this bit pattern before hashing.
_CANONICAL_NAN = struct.pack("<d", float("nan"))


def _float_bytes(value: float) -> bytes:
    if math.isnan(value):
        return _CANONICAL_NAN
    # IEEE-754 bits, not repr: -0.0 != 0.0, and every finite value
    # digests the same on every platform and after a JSON round trip
    return struct.pack("<d", value)


def _update(h, value: Any) -> None:
    """Feed one value into the hash, type-tagged and length-prefixed."""
    if value is None:
        h.update(b"n;")
    elif value is True:
        h.update(b"t;")
    elif value is False:
        h.update(b"f;")
    elif isinstance(value, int):
        text = str(value).encode("ascii")
        h.update(b"i%d:%s;" % (len(text), text))
    elif isinstance(value, float):
        h.update(b"d")
        h.update(_float_bytes(value))
        h.update(b";")
    elif isinstance(value, str):
        raw = value.encode("utf-8", "surrogatepass")
        h.update(b"s%d:" % len(raw))
        h.update(raw)
        h.update(b";")
    elif isinstance(value, (bytes, bytearray)):
        h.update(b"b%d:" % len(value))
        h.update(bytes(value))
        h.update(b";")
    elif isinstance(value, (list, tuple)):
        # tuples alias lists: JSON cannot tell them apart, and the
        # digest must survive a save/load round trip
        h.update(b"l%d:" % len(value))
        for item in value:
            _update(h, item)
        h.update(b";")
    elif isinstance(value, (set, frozenset)):
        digests = sorted(canonical_digest(item) for item in value)
        h.update(b"e%d:" % len(digests))
        for digest in digests:
            h.update(digest.encode("ascii"))
        h.update(b";")
    elif isinstance(value, Mapping):
        # keys are stringified (as json.dumps does) and sorted, so the
        # digest is independent of insertion order and of int-vs-str
        # key drift across a JSON round trip
        items = sorted(
            ((_key_str(key), item) for key, item in value.items()),
            key=lambda pair: pair[0],
        )
        h.update(b"m%d:" % len(items))
        for key, item in items:
            _update(h, key)
            _update(h, item)
        h.update(b";")
    else:
        raise IntegrityError(
            f"cannot canonically digest a {type(value).__name__}: {value!r}"
        )


def _key_str(key: Any) -> str:
    if isinstance(key, str):
        return key
    if key is True:
        return "true"
    if key is False:
        return "false"
    if key is None:
        return "null"
    return str(key)


def canonical_digest(value: Any) -> str:
    """sha256 hex digest of *value*'s canonical byte encoding.

    Equal values digest equally; a value digests the same before and
    after a JSON round trip; any field perturbation — including float
    sign-of-zero — changes the digest.  Raises
    :class:`~repro.errors.IntegrityError` for non-JSON-encodable
    types.
    """
    h = hashlib.sha256()
    _update(h, value)
    return h.hexdigest()


def field_diff(expected: Any, observed: Any, path: str = "$") -> Optional[str]:
    """Locate the first difference between two result values.

    Returns a human-readable description anchored at a JSON-path-like
    location (``$.latencies.TOC2[3]``), or ``None`` when the values
    are canonically identical.  Comparison follows the digest's
    equivalence: NaNs match each other, ``-0.0`` differs from ``0.0``,
    ints never equal floats, tuples alias lists.
    """
    if isinstance(expected, bool) or isinstance(observed, bool):
        if expected is not observed:
            return f"{path}: expected {expected!r}, observed {observed!r}"
        return None
    if isinstance(expected, (list, tuple)) and isinstance(
        observed, (list, tuple)
    ):
        if len(expected) != len(observed):
            return (
                f"{path}: length {len(expected)} != {len(observed)}"
            )
        for index, (a, b) in enumerate(zip(expected, observed)):
            found = field_diff(a, b, f"{path}[{index}]")
            if found:
                return found
        return None
    if isinstance(expected, Mapping) and isinstance(observed, Mapping):
        a_keys = {_key_str(k) for k in expected}
        b_keys = {_key_str(k) for k in observed}
        if a_keys != b_keys:
            only_a = sorted(a_keys - b_keys)
            only_b = sorted(b_keys - a_keys)
            return (
                f"{path}: key sets differ "
                f"(missing {only_b or '-'}, extra {only_a or '-'})"
            )
        a_items = {_key_str(k): v for k, v in expected.items()}
        b_items = {_key_str(k): v for k, v in observed.items()}
        for key in sorted(a_items):
            found = field_diff(a_items[key], b_items[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(expected, float) and isinstance(observed, float):
        if _float_bytes(expected) != _float_bytes(observed):
            return f"{path}: expected {expected!r}, observed {observed!r}"
        return None
    if type(expected) is not type(observed) and not (
        isinstance(expected, (list, tuple))
        and isinstance(observed, (list, tuple))
    ):
        if canonical_digest(expected) == canonical_digest(observed):
            return None
        return (
            f"{path}: type {type(expected).__name__} != "
            f"{type(observed).__name__}"
        )
    if expected != observed:
        return f"{path}: expected {expected!r}, observed {observed!r}"
    return None


def run_digest(result: Any) -> str:
    """Canonical digest of a simulation result's observable content.

    Covers the run length, completion tick and every recorded signal
    trace stream — the facts golden-run comparisons and EA banks read.
    Works for any target whose result carries ``ticks_run`` /
    ``completion_tick`` / ``traces``.
    """
    traces = getattr(result, "traces", None)
    streams: Dict[str, Any] = {}
    if traces is not None:
        for signal in sorted(traces.signals()):
            streams[signal] = [
                list(traces.ticks_of(signal)),
                [float(v) for v in traces.values_of(signal)],
            ]
    return canonical_digest(
        {
            "ticks_run": getattr(result, "ticks_run", None),
            "completion_tick": getattr(result, "completion_tick", None),
            "traces": streams,
        }
    )


# ======================================================================
# Structured violations and counters.
# ======================================================================
@dataclass(frozen=True)
class IntegrityViolation:
    """One detected integrity violation, structured for the event log.

    ``kind`` is one of ``audit_mismatch`` (fast-forward result
    diverged from its full replay), ``checkpoint_digest`` (a stored
    record did not match its digest), ``result_digest`` (a saved
    result file failed verification), ``worker_drift`` (a pool
    worker's golden digest diverged from the parent's) or
    ``fast_forward_disabled`` (the auditor stopped trusting the
    engine after repeated mismatches).
    """

    kind: str
    campaign: str = ""
    index: Optional[int] = None
    detail: str = ""
    expected: str = ""
    observed: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "campaign": self.campaign,
            "index": self.index,
            "detail": self.detail,
            "expected": self.expected,
            "observed": self.observed,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "IntegrityViolation":
        index = payload.get("index")
        return cls(
            kind=str(payload.get("kind", "")),
            campaign=str(payload.get("campaign", "")),
            index=int(index) if index is not None else None,
            detail=str(payload.get("detail", "")),
            expected=str(payload.get("expected", "")),
            observed=str(payload.get("observed", "")),
        )

    def describe(self) -> str:
        where = f" task {self.index}" if self.index is not None else ""
        text = f"[{self.campaign or 'campaign'}]{where} {self.kind}"
        if self.detail:
            text += f": {self.detail}"
        return text


class IntegrityStats:
    """Process-local integrity counters.

    Module-global like :data:`~repro.fi.snapshot.ff_stats`: forked
    pool workers mutate their copy, the executor snapshots the
    counters around each task and ships the delta home beside the
    task result.
    """

    __slots__ = ("audits", "audit_mismatches", "audit_repairs")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.audits = 0
        self.audit_mismatches = 0
        self.audit_repairs = 0

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.audits, self.audit_mismatches, self.audit_repairs)


#: the process-wide counters used by all auditing machinery.
integrity_stats = IntegrityStats()

#: violations raised since the last drain; the executor drains this
#: after every task attempt and ships the records home in-band.
_PENDING_VIOLATIONS: List[IntegrityViolation] = []


def push_violation(violation: IntegrityViolation) -> None:
    _PENDING_VIOLATIONS.append(violation)


def drain_violations() -> List[IntegrityViolation]:
    drained = list(_PENDING_VIOLATIONS)
    _PENDING_VIOLATIONS.clear()
    return drained


# ======================================================================
# Sampled audit replay.
# ======================================================================
def _policy_of(config: Any) -> str:
    policy = getattr(config, "integrity_policy", None) if config else None
    return policy if policy in POLICIES else DEFAULT_POLICY


class RunAuditor:
    """Re-executes a sampled fraction of fast-forwarded runs in full.

    ``run(index, execute)`` calls ``execute(ff)`` — the campaign's
    per-run function parameterized on a fast-forward handle — once
    with the campaign's real handle.  When the run is selected for
    audit *and* actually used the engine (restored a checkpoint or
    resynchronized), it is executed a second time with fast-forwarding
    disabled — a full replay from tick 0 — and the two JSON-encodable
    outcomes are field-diffed.  A difference means some layer between
    the simulator and the result lied; it becomes an
    :class:`IntegrityViolation` and is handled per the policy:

    * ``strict`` — raise :class:`~repro.errors.IntegrityError`; the
      executor aborts the campaign (a deterministic mismatch would
      only repeat on retry).
    * ``repair`` — adopt the trusted full-replay result.  After
      ``disable_after`` mismatches in one process the auditor stops
      using fast-forward for *every* subsequent run (audited or not):
      an engine that repeatedly lies is not worth its speedup.
    * ``off`` — never audit.

    Sampling is deterministic per ``(audit_seed, index)``, so serial
    and parallel campaigns audit the same runs and stay bit-identical.
    """

    def __init__(
        self,
        ff: Any,
        config: Any = None,
        campaign: str = "campaign",
        disable_after: int = DEFAULT_DISABLE_AFTER,
    ) -> None:
        self.campaign = campaign
        self.policy = _policy_of(config)
        fraction = getattr(config, "audit_fraction", 0.0) if config else 0.0
        self.fraction = max(0.0, min(1.0, float(fraction or 0.0)))
        seed = getattr(config, "audit_seed", None) if config else None
        if seed is None:
            seed = getattr(config, "seed", 0) if config else 0
        self.seed = int(seed)
        self.disable_after = disable_after
        self._ff = ff
        self._replay_ff = None
        if ff is not None:
            # same factory, target, stride and bank specs — only the
            # engine is off, so the replay builds its simulator the
            # way a --no-fast-forward campaign would
            self._replay_ff = copy.copy(ff)
            self._replay_ff.enabled = False
        self._mismatches = 0
        self._ff_disabled = False

    @property
    def active(self) -> bool:
        return (
            self._ff is not None
            and self._ff.enabled
            and self.policy != "off"
            and self.fraction > 0.0
        )

    def should_audit(self, index: int) -> bool:
        """Deterministic Bernoulli(fraction) draw for one task index."""
        if not self.active:
            return False
        if self.fraction >= 1.0:
            return True
        blob = f"{self.seed}:{index}".encode("ascii")
        bucket = int.from_bytes(
            hashlib.sha256(blob).digest()[:8], "big"
        ) / float(1 << 64)
        return bucket < self.fraction

    def run(self, index: int, execute: Callable[[Any], Any]) -> Any:
        """Execute one run, audited per the policy and sampling."""
        if self._ff is None:
            return execute(None)
        if self._ff_disabled:
            return execute(self._replay_ff)
        from repro.fi.snapshot import ff_stats

        before = ff_stats.as_tuple()
        result = execute(self._ff)
        if not self.should_audit(index):
            return result
        delta = tuple(
            after - b for b, after in zip(before, ff_stats.as_tuple())
        )
        # restores / resyncs are positions 0 and 1: a run that never
        # touched the engine is already a full replay — nothing to audit
        if delta[0] == 0 and delta[1] == 0:
            return result
        integrity_stats.audits += 1
        replayed = execute(self._replay_ff)
        difference = field_diff(replayed, result)
        if difference is None:
            return result
        integrity_stats.audit_mismatches += 1
        violation = IntegrityViolation(
            kind="audit_mismatch",
            campaign=self.campaign,
            index=index,
            detail=difference,
            expected=canonical_digest(_jsonable(replayed)),
            observed=canonical_digest(_jsonable(result)),
        )
        push_violation(violation)
        if self.policy == "strict":
            raise IntegrityError(
                f"audit replay mismatch: {violation.describe()}"
            )
        integrity_stats.audit_repairs += 1
        self._mismatches += 1
        if not self._ff_disabled and self._mismatches >= self.disable_after:
            self._ff_disabled = True
            push_violation(
                IntegrityViolation(
                    kind="fast_forward_disabled",
                    campaign=self.campaign,
                    index=index,
                    detail=(
                        f"{self._mismatches} audit mismatches in one "
                        f"process; replaying all remaining runs in full"
                    ),
                )
            )
        return replayed


def _jsonable(value: Any) -> Any:
    """Best-effort canonical form for digesting arbitrary outcomes."""
    try:
        canonical_digest(value)
        return value
    except IntegrityError:
        return repr(value)


# ======================================================================
# Worker drift sentinels.
# ======================================================================
def golden_sentinel(factory: Callable[[Any], Any], test_case: Any):
    """Build the probe a pool worker runs before its first real task.

    The returned callable computes a *fresh* golden run for
    *test_case* (no caches involved) and returns its
    :func:`run_digest`.  The parent computes the same digest before
    forking; a worker whose digest differs is drifting — different FP
    environment, mismatched code version, corrupted memory — and none
    of its results can be trusted.
    """

    def compute() -> str:
        simulator = factory(test_case)
        return run_digest(simulator.run())

    return compute
