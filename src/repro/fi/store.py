"""The campaign results database behind the :class:`ResultStore` API.

Campaign persistence used to be an implicit contract scattered over
the executor (JSON checkpoint read/write/flush/fingerprint) and
:mod:`repro.fi.serialization` (``save_json``/``load_json``).  This
module makes the contract explicit: a :class:`ResultStore` owns both
halves of campaign persistence —

* the **checkpoint side** (per-task records keyed by campaign +
  fingerprint, digest-verified on load, flushed incrementally while
  the campaign runs), consumed by
  :class:`~repro.fi.executor.CampaignExecutor`;
* the **result side** (whole campaign results — permeability
  estimates, detection results, memory campaigns — saved under a run
  name with metadata), consumed by the analytics layer
  (:mod:`repro.analysis.compare`) and the ``repro analyze`` CLI.

Two implementations:

:class:`JsonCheckpointStore`
    Bit-compatible with the pre-store checkpoint files (the
    ``{campaign, fingerprint, n_tasks, results, digests}`` document,
    schema revision 2) and with ``save_json`` result envelopes.  The
    whole document lives in memory and is rewritten atomically
    (write-temp-then-rename) on flush — but only when new records
    actually arrived since the last flush.

:class:`SqliteResultStore`
    A real results database: campaigns, per-task records, quarantined
    task failures, integrity violations, run events and saved results
    in normalized sqlite tables, written in WAL mode.  Records stream
    in per-flush transactions (each record's bytes are written once,
    instead of rewriting the whole document), and resume only needs
    the completed index set — the full result set is never
    materialized in memory on load.  One database file holds many
    campaigns and many runs, which is what makes cross-campaign
    analytics (``repro analyze diff``) possible.

Digests are a store-level concern: stores stamp every checkpoint
record with its canonical content digest
(:func:`~repro.fi.integrity.canonical_digest`) on write and re-verify
on load, reporting mismatches through the caller's violation callback
per the integrity policy (``strict`` raises, ``repair`` drops the
record for re-execution, ``off`` loads unverified).
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import CampaignError, IntegrityError
from repro.fi.integrity import IntegrityViolation, canonical_digest

__all__ = [
    "STORE_BACKENDS",
    "SQLITE_SUFFIXES",
    "StoreStats",
    "StoredResult",
    "StoredCampaign",
    "ResultStore",
    "JsonCheckpointStore",
    "SqliteResultStore",
    "backend_for_path",
    "open_store",
]

STORE_BACKENDS = ("json", "sqlite")

#: checkpoint paths with these suffixes auto-select the sqlite backend.
SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

#: marker key of an encoded TaskFailure record (mirrors the executor's
#: ``_FAILURE_MARKER``; kept literal here so the store does not import
#: the executor, which imports the store).
_FAILURE_MARKER = "__task_failure__"

_VIOLATION_CALLBACK = Callable[[IntegrityViolation], None]

#: bounded retry of a flush transaction that hits ``SQLITE_BUSY``
#: (concurrent campaigns sharing one results database).
_BUSY_RETRIES = 5
_BUSY_BACKOFF_S = 0.05

#: flushes started by this process, counted only while the
#: ``REPRO_CHAOS_KILL_FLUSH`` chaos hook is armed.
_CHAOS_FLUSH_N = 0


def _chaos_kill_flush() -> None:
    """Simulated ``kill -9`` at a flush's most vulnerable point.

    ``REPRO_CHAOS_KILL_FLUSH=<n>`` hard-exits the process during this
    process's *n*-th flush — after the new bytes are staged (temp file
    written / rows inserted) but before they become durable (rename /
    commit).  A crash in this window must leave the previously
    persisted state intact and loadable; the recovery tests and the
    service chaos job drive exactly that.
    """
    target = os.environ.get("REPRO_CHAOS_KILL_FLUSH")
    if not target:
        return
    try:
        nth = int(target)
    except ValueError:
        return
    global _CHAOS_FLUSH_N
    _CHAOS_FLUSH_N += 1
    if _CHAOS_FLUSH_N == nth:
        os._exit(137)


def backend_for_path(path: str, backend: Optional[str] = None) -> str:
    """Resolve a store backend name for *path*.

    An explicit *backend* wins; otherwise the path's suffix selects
    sqlite (:data:`SQLITE_SUFFIXES`) or json (everything else).
    """
    if backend is not None:
        if backend not in STORE_BACKENDS:
            raise CampaignError(
                f"unknown store backend {backend!r}; "
                f"choose from {STORE_BACKENDS}"
            )
        return backend
    suffix = os.path.splitext(path)[1].lower()
    return "sqlite" if suffix in SQLITE_SUFFIXES else "json"


def open_store(path: str, backend: Optional[str] = None) -> "ResultStore":
    """Open the :class:`ResultStore` for *path* (see
    :func:`backend_for_path` for backend selection)."""
    resolved = backend_for_path(path, backend)
    if resolved == "sqlite":
        return SqliteResultStore(path)
    return JsonCheckpointStore(path)


@dataclass
class StoreStats:
    """Write-side statistics of one store instance.

    ``bytes_written`` counts the payload bytes each flush persisted —
    the whole document for the JSON backend, only the new records for
    sqlite — which is the quantity the store benchmark compares.
    """

    flushes: int = 0
    #: flushes skipped because no new records arrived.
    skipped_flushes: int = 0
    records_written: int = 0
    bytes_written: int = 0
    #: flush transactions retried after SQLITE_BUSY contention.
    busy_retries: int = 0


@dataclass(frozen=True)
class StoredResult:
    """Catalogue entry of one saved campaign result."""

    run: str
    kind: str
    created_ts: float
    digest: str
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class StoredCampaign:
    """Catalogue entry of one checkpointed campaign."""

    campaign: str
    fingerprint: str
    n_tasks: int
    completed: int
    failures: int


# ======================================================================
# The abstract store interface.
# ======================================================================
class ResultStore(ABC):
    """Persistence of campaign checkpoints and campaign results.

    Checkpoint protocol (driven by the executor)::

        rejects = store.open_campaign(name, fingerprint, n_tasks,
                                      policy, on_violation)
        done = store.completed_indices()     # schedule only the rest
        store.put_record(index, record)      # per finished task
        store.flush()                        # per checkpoint_every,
                                             # and on every exit path
        record = store.get_record(index)     # resumed records, lazily

    Result protocol (driven by drivers and the analytics layer)::

        store.save_result(result, run="table4/detection", meta={...})
        result = store.load_result("table4/detection")
        store.list_results()

    Records must be JSON-encodable; the executor encodes
    :class:`~repro.fi.executor.TaskFailure` records before handing
    them over and decodes them after fetching.
    """

    backend: str = ""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.stats = StoreStats()

    # -- checkpoint side ------------------------------------------------
    @abstractmethod
    def open_campaign(
        self,
        campaign: str,
        fingerprint: str,
        n_tasks: int,
        policy: str = "repair",
        on_violation: Optional[_VIOLATION_CALLBACK] = None,
    ) -> int:
        """Bind the store to one campaign identity; returns the number
        of stored records rejected by digest verification.

        A stored campaign whose fingerprint or task count mismatches
        is treated as absent (the legacy checkpoint behaviour), never
        as an error.  Under the ``strict`` policy a digest mismatch
        raises :class:`~repro.errors.IntegrityError`; under ``repair``
        the record is dropped (and will be re-executed); ``off`` skips
        verification.
        """

    @abstractmethod
    def completed_indices(self) -> Set[int]:
        """Verified task indices of the bound campaign."""

    @abstractmethod
    def get_record(self, index: int) -> Any:
        """The stored record at *index* (raw, JSON-decoded)."""

    @abstractmethod
    def put_record(
        self, index: int, record: Any, digest: Optional[str] = None
    ) -> None:
        """Stage one record; persisted by the next :meth:`flush`.

        The store computes the record's canonical digest unless an
        explicit *digest* is given (checkpoint migration preserves the
        original digests verbatim).
        """

    @abstractmethod
    def flush(self) -> bool:
        """Persist staged records; returns False when there was
        nothing new to write (the flush was skipped)."""

    @abstractmethod
    def discard_campaign(self, campaign: str) -> None:
        """Drop every stored record of *campaign* (fresh-start runs)."""

    @abstractmethod
    def list_campaigns(self) -> List[StoredCampaign]:
        """Catalogue of the checkpointed campaigns in this store."""

    # -- event mirroring ------------------------------------------------
    def log_event(self, record: Dict[str, Any]) -> None:
        """Mirror one run event into the store (sqlite only)."""

    # -- result side ----------------------------------------------------
    @abstractmethod
    def save_result(
        self,
        result: Any,
        run: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Save a campaign result under *run*; returns the run key."""

    @abstractmethod
    def load_result(self, run: Optional[str] = None) -> Any:
        """Load a saved campaign result (digest-verified)."""

    @abstractmethod
    def list_results(self) -> List[StoredResult]:
        """Catalogue of the saved results in this store."""

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release any underlying resources (idempotent)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _digest_or_none(record: Any) -> Optional[str]:
    try:
        return canonical_digest(record)
    except IntegrityError:
        return None  # non-JSON records cannot be verified later


def _verify_record(
    campaign: str,
    index: int,
    record: Any,
    stored_digest: Optional[str],
    policy: str,
    on_violation: Optional[_VIOLATION_CALLBACK],
    path: str,
) -> bool:
    """Digest-check one loaded record; returns whether to keep it.

    Records without a digest (pre-digest files) always load; a
    mismatch is reported through *on_violation* and then either raises
    (``strict``) or rejects the record (``repair``).
    """
    if stored_digest is None or policy == "off":
        return True
    computed = _digest_or_none(record)
    if computed is None:
        computed = "<undigestable>"
    if computed == stored_digest:
        return True
    violation = IntegrityViolation(
        kind="checkpoint_digest",
        campaign=campaign,
        index=index,
        detail="stored record does not match its digest",
        expected=str(stored_digest),
        observed=computed,
    )
    if on_violation is not None:
        on_violation(violation)
    if policy == "strict":
        raise IntegrityError(
            f"checkpoint {path} failed verification: "
            f"{violation.describe()}"
        )
    return False  # repair: drop it, the task re-executes


# ======================================================================
# JSON backend.
# ======================================================================
class JsonCheckpointStore(ResultStore):
    """The legacy single-file JSON checkpoint, behind the store API.

    Bit-compatible with pre-store files: the same
    ``{campaign, fingerprint, n_tasks, results, digests}`` document
    (checkpoint side) and the same digest-stamped ``save_json``
    envelope (result side).  The document is rewritten atomically on
    flush — write to ``<path>.tmp``, then :func:`os.replace` — and the
    rewrite is skipped entirely when no new records arrived.
    """

    backend = "json"

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._bound: Optional[Tuple[str, str, int]] = None
        self._records: Dict[int, Any] = {}
        self._digests: Dict[int, str] = {}
        self._dirty = False
        self._new = 0

    # -- checkpoint side ------------------------------------------------
    def open_campaign(
        self,
        campaign: str,
        fingerprint: str,
        n_tasks: int,
        policy: str = "repair",
        on_violation: Optional[_VIOLATION_CALLBACK] = None,
    ) -> int:
        key = (campaign, fingerprint, n_tasks)
        if self._bound == key:
            return 0  # already verified in this store instance
        self._bound = key
        self._records = {}
        self._digests = {}
        self._dirty = False
        self._new = 0
        if not os.path.exists(self.path):
            return 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return 0
        if (
            not isinstance(payload, dict)
            or payload.get("campaign") != campaign
            or payload.get("fingerprint") != fingerprint
            or payload.get("n_tasks") != n_tasks
        ):
            # a stale document for some other campaign identity: treat
            # as absent, and overwrite it on the next flush even if no
            # new records arrive, so it cannot shadow this campaign
            self._dirty = True
            return 0
        digests = payload.get("digests")
        if not isinstance(digests, dict):
            digests = {}
        rejects = 0
        # a structurally corrupt checkpoint (non-numeric indices,
        # results that are not a mapping, mangled records) is discarded
        # like a mismatched one — never crash the campaign
        try:
            records: Dict[int, Any] = {}
            kept_digests: Dict[int, str] = {}
            for index, record in payload.get("results", {}).items():
                i = int(index)
                if not 0 <= i < n_tasks:
                    continue
                stored = digests.get(index)
                if not _verify_record(
                    campaign, i, record, stored, policy,
                    on_violation, self.path,
                ):
                    rejects += 1
                    continue
                if (
                    isinstance(record, dict)
                    and record.get(_FAILURE_MARKER) == 1
                ):
                    # a mangled quarantine record is structural
                    # corruption: raising here routes into the
                    # whole-discard path, like the legacy loader
                    int(record["index"])
                    int(record["attempts"])
                    record["kind"] + ""
                    record["error"] + ""
                if isinstance(stored, str):
                    kept_digests[i] = stored
                records[i] = record
        except IntegrityError:
            self._bound = None  # strict abort: leave the store unbound
            raise
        except (AttributeError, KeyError, TypeError, ValueError):
            self._dirty = True
            return rejects
        self._records = records
        self._digests = kept_digests
        if rejects:
            self._dirty = True  # rewrite without the rejected records
        return rejects

    def completed_indices(self) -> Set[int]:
        return set(self._records)

    def get_record(self, index: int) -> Any:
        return self._records[index]

    def put_record(
        self, index: int, record: Any, digest: Optional[str] = None
    ) -> None:
        self._records[index] = record
        resolved = digest if digest is not None else _digest_or_none(record)
        if resolved is not None:
            self._digests[index] = resolved
        else:
            self._digests.pop(index, None)
        self._dirty = True
        self._new += 1

    def flush(self) -> bool:
        if self._bound is None or not self._dirty:
            self.stats.skipped_flushes += 1
            return False
        campaign, fingerprint, n_tasks = self._bound
        payload = {
            "campaign": campaign,
            "fingerprint": fingerprint,
            "n_tasks": n_tasks,
            "results": {
                str(index): record
                for index, record in self._records.items()
            },
            "digests": {
                str(index): digest
                for index, digest in self._digests.items()
                if index in self._records
            },
        }
        text = json.dumps(payload)
        tmp = f"{self.path}.tmp"
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        _chaos_kill_flush()  # die after the temp write, before the rename
        os.replace(tmp, self.path)
        self._dirty = False
        self.stats.flushes += 1
        self.stats.records_written += self._new
        self._new = 0
        self.stats.bytes_written += len(text)
        return True

    def discard_campaign(self, campaign: str) -> None:
        if self._bound is not None and self._bound[0] == campaign:
            self._bound = None
            self._records = {}
            self._digests = {}
            self._dirty = False
            self._new = 0
        if os.path.exists(self.path):
            os.remove(self.path)

    def list_campaigns(self) -> List[StoredCampaign]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return []
        if not isinstance(payload, dict) or "campaign" not in payload:
            return []
        results = payload.get("results", {})
        if not isinstance(results, dict):
            results = {}
        failures = sum(
            1
            for record in results.values()
            if isinstance(record, dict)
            and record.get(_FAILURE_MARKER) == 1
        )
        return [
            StoredCampaign(
                campaign=str(payload.get("campaign")),
                fingerprint=str(payload.get("fingerprint")),
                n_tasks=int(payload.get("n_tasks") or 0),
                completed=len(results),
                failures=failures,
            )
        ]

    # -- result side ----------------------------------------------------
    def save_result(
        self,
        result: Any,
        run: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        from repro.fi.serialization import result_to_document

        data = result_to_document(result)
        with open(self.path, "w", encoding="utf-8") as handle:
            text = json.dumps(data, indent=2)
            handle.write(text)
        self.stats.flushes += 1
        self.stats.bytes_written += len(text)
        return run if run is not None else self.path

    def load_result(self, run: Optional[str] = None) -> Any:
        from repro.fi.serialization import document_to_result

        with open(self.path, "r", encoding="utf-8") as handle:
            data = json.loads(handle.read())
        return document_to_result(data, source=self.path)

    def list_results(self) -> List[StoredResult]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.loads(handle.read())
        except (OSError, ValueError):
            return []
        if not isinstance(data, dict) or "kind" not in data:
            return []
        return [
            StoredResult(
                run=self.path,
                kind=str(data.get("kind")),
                created_ts=os.path.getmtime(self.path),
                digest=str(data.get("digest", "")),
            )
        ]


# ======================================================================
# Sqlite backend.
# ======================================================================
_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id          INTEGER PRIMARY KEY,
    name        TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    n_tasks     INTEGER NOT NULL,
    created_ts  REAL NOT NULL,
    UNIQUE (name, fingerprint, n_tasks)
);
CREATE TABLE IF NOT EXISTS tasks (
    campaign_id INTEGER NOT NULL
        REFERENCES campaigns(id) ON DELETE CASCADE,
    idx         INTEGER NOT NULL,
    record      TEXT NOT NULL,
    digest      TEXT,
    PRIMARY KEY (campaign_id, idx)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS task_failures (
    campaign_id INTEGER NOT NULL
        REFERENCES campaigns(id) ON DELETE CASCADE,
    idx         INTEGER NOT NULL,
    kind        TEXT NOT NULL,
    error       TEXT NOT NULL,
    attempts    INTEGER NOT NULL,
    PRIMARY KEY (campaign_id, idx)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS integrity_violations (
    id          INTEGER PRIMARY KEY,
    campaign_id INTEGER
        REFERENCES campaigns(id) ON DELETE CASCADE,
    ts          REAL NOT NULL,
    kind        TEXT NOT NULL,
    idx         INTEGER,
    detail      TEXT NOT NULL,
    expected    TEXT,
    observed    TEXT
);
CREATE TABLE IF NOT EXISTS events (
    id          INTEGER PRIMARY KEY,
    campaign_id INTEGER
        REFERENCES campaigns(id) ON DELETE CASCADE,
    ts          REAL NOT NULL,
    event       TEXT NOT NULL,
    payload     TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    run         TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    payload     TEXT NOT NULL,
    digest      TEXT NOT NULL,
    created_ts  REAL NOT NULL,
    meta        TEXT
);
"""


class SqliteResultStore(ResultStore):
    """Normalized sqlite results database in WAL mode.

    One file holds any number of campaigns (checkpoint records keyed
    by campaign identity) and any number of saved results (keyed by
    run name).  Checkpoint records stream in per-flush transactions:
    every record's bytes hit the database exactly once, so large
    campaigns do not pay the quadratic rewrite cost of the JSON
    document, and resume only reads the completed index set into
    memory.
    """

    backend = "sqlite"

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._conn: Optional[sqlite3.Connection] = None
        self._campaign_id: Optional[int] = None
        self._campaign: Optional[Tuple[str, str, int]] = None
        self._completed: Set[int] = set()
        #: staged records: index -> (json text, digest, failure row)
        self._pending: Dict[
            int, Tuple[str, Optional[str], Optional[Tuple]]
        ] = {}
        self._pending_events: List[Tuple[float, str, str]] = []

    # -- connection -----------------------------------------------------
    @property
    def connection(self) -> sqlite3.Connection:
        if self._conn is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            conn = sqlite3.connect(self.path, timeout=30.0)
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute("PRAGMA foreign_keys=ON")
                # the connect timeout above only guards the python
                # layer; an explicit busy_timeout makes sqlite itself
                # wait out writer contention instead of surfacing
                # SQLITE_BUSY immediately (concurrent campaigns share
                # one results database under the service daemon)
                conn.execute("PRAGMA busy_timeout=30000")
                conn.executescript(_SCHEMA)
                conn.commit()
            except sqlite3.Error as exc:
                # close the half-open handle before surfacing a clean
                # one-line error (a hot WAL journal must not linger)
                try:
                    conn.close()
                except sqlite3.Error:
                    pass
                raise CampaignError(
                    f"{self.path}: not a usable sqlite results "
                    f"database ({exc})"
                ) from exc
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            try:
                self.flush()
            except (sqlite3.Error, CampaignError):
                pass
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- checkpoint side ------------------------------------------------
    def open_campaign(
        self,
        campaign: str,
        fingerprint: str,
        n_tasks: int,
        policy: str = "repair",
        on_violation: Optional[_VIOLATION_CALLBACK] = None,
    ) -> int:
        key = (campaign, fingerprint, n_tasks)
        if self._campaign == key:
            return 0  # already verified in this store instance
        conn = self.connection
        self._campaign = key
        self._pending = {}
        row = conn.execute(
            "SELECT id FROM campaigns "
            "WHERE name = ? AND fingerprint = ? AND n_tasks = ?",
            (campaign, fingerprint, n_tasks),
        ).fetchone()
        if row is None:
            cursor = conn.execute(
                "INSERT INTO campaigns "
                "(name, fingerprint, n_tasks, created_ts) "
                "VALUES (?, ?, ?, ?)",
                (campaign, fingerprint, n_tasks, time.time()),
            )
            conn.commit()
            self._campaign_id = cursor.lastrowid
            self._completed = set()
            return 0
        self._campaign_id = row[0]
        rejects = 0
        completed: Set[int] = set()
        rejected: List[int] = []
        for idx, record_text, digest in conn.execute(
            "SELECT idx, record, digest FROM tasks "
            "WHERE campaign_id = ? ORDER BY idx",
            (self._campaign_id,),
        ):
            if not 0 <= idx < n_tasks:
                rejected.append(idx)
                continue
            if policy != "off" and digest is not None:
                try:
                    record = json.loads(record_text)
                except ValueError:
                    record = None
                try:
                    kept = _verify_record(
                        campaign, idx, record, digest, policy,
                        on_violation, self.path,
                    )
                except IntegrityError:
                    # strict abort: leave the store unbound
                    self._campaign = None
                    self._campaign_id = None
                    self._completed = set()
                    raise
                if not kept:
                    rejects += 1
                    rejected.append(idx)
                    continue
            completed.add(idx)
        if rejected:
            conn.executemany(
                "DELETE FROM tasks WHERE campaign_id = ? AND idx = ?",
                [(self._campaign_id, idx) for idx in rejected],
            )
            conn.executemany(
                "DELETE FROM task_failures "
                "WHERE campaign_id = ? AND idx = ?",
                [(self._campaign_id, idx) for idx in rejected],
            )
            conn.commit()
        self._completed = completed
        return rejects

    def _require_campaign(self) -> int:
        if self._campaign_id is None:
            raise CampaignError(
                "no campaign bound; call open_campaign() first"
            )
        return self._campaign_id

    def completed_indices(self) -> Set[int]:
        self._require_campaign()
        return set(self._completed)

    def get_record(self, index: int) -> Any:
        campaign_id = self._require_campaign()
        staged = self._pending.get(index)
        if staged is not None:
            return json.loads(staged[0])
        row = self.connection.execute(
            "SELECT record FROM tasks WHERE campaign_id = ? AND idx = ?",
            (campaign_id, index),
        ).fetchone()
        if row is None:
            raise CampaignError(
                f"no stored record for task {index} in {self.path}"
            )
        return json.loads(row[0])

    def put_record(
        self, index: int, record: Any, digest: Optional[str] = None
    ) -> None:
        self._require_campaign()
        text = json.dumps(record, separators=(",", ":"))
        resolved = digest if digest is not None else _digest_or_none(record)
        failure: Optional[Tuple] = None
        if isinstance(record, dict) and record.get(_FAILURE_MARKER) == 1:
            failure = (
                str(record.get("kind", "")),
                str(record.get("error", "")),
                int(record.get("attempts", 0)),
            )
        self._pending[index] = (text, resolved, failure)
        self._completed.add(index)

    def flush(self) -> bool:
        if not self._pending and not self._pending_events:
            self.stats.skipped_flushes += 1
            return False
        conn = self.connection
        campaign_id = self._campaign_id
        pending = self._pending
        events = self._pending_events
        self._pending = {}
        self._pending_events = []
        try:
            written = self._flush_with_busy_retry(
                conn, campaign_id, pending, events
            )
        except BaseException:
            # whatever interrupted the flush (SQLITE_BUSY exhaustion,
            # KeyboardInterrupt during drain, an I/O error): the
            # staged records are not lost — they re-enter the next
            # flush, behind anything staged meanwhile
            self._restage(pending, events)
            raise
        self.stats.flushes += 1
        self.stats.records_written += len(pending)
        self.stats.bytes_written += written
        return True

    def _restage(
        self,
        pending: Dict[int, Tuple[str, Optional[str], Optional[Tuple]]],
        events: List[Tuple[float, str, str]],
    ) -> None:
        for idx, row in pending.items():
            self._pending.setdefault(idx, row)
        self._pending_events[:0] = events

    def _flush_with_busy_retry(
        self,
        conn: sqlite3.Connection,
        campaign_id: Optional[int],
        pending: Dict[int, Tuple[str, Optional[str], Optional[Tuple]]],
        events: List[Tuple[float, str, str]],
    ) -> int:
        """One flush transaction, retried through ``SQLITE_BUSY``.

        ``busy_timeout`` already makes sqlite wait out short writer
        contention; this bounded retry covers the residual cases that
        still surface as ``database is locked`` (a writer holding the
        lock past the timeout, lock escalation races), so concurrent
        campaigns sharing one database degrade to a delay, not a
        crash.
        """
        for attempt in range(1, _BUSY_RETRIES + 1):
            try:
                return self._flush_transaction(
                    conn, campaign_id, pending, events
                )
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                try:
                    conn.rollback()
                except sqlite3.Error:
                    pass
                if attempt == _BUSY_RETRIES:
                    raise CampaignError(
                        f"{self.path}: flush still SQLITE_BUSY after "
                        f"{_BUSY_RETRIES} attempts ({exc})"
                    ) from exc
                self.stats.busy_retries += 1
                time.sleep(_BUSY_BACKOFF_S * (2 ** (attempt - 1)))
        raise AssertionError("unreachable")  # pragma: no cover

    def _flush_transaction(
        self,
        conn: sqlite3.Connection,
        campaign_id: Optional[int],
        pending: Dict[int, Tuple[str, Optional[str], Optional[Tuple]]],
        events: List[Tuple[float, str, str]],
    ) -> int:
        written = 0
        if pending:
            if campaign_id is None:  # pragma: no cover - guarded by put
                raise CampaignError("no campaign bound for staged records")
            conn.executemany(
                "INSERT OR REPLACE INTO tasks "
                "(campaign_id, idx, record, digest) VALUES (?, ?, ?, ?)",
                [
                    (campaign_id, idx, text, digest)
                    for idx, (text, digest, _) in pending.items()
                ],
            )
            # quarantined tasks are mirrored into the normalized
            # failures table; a later successful record (repair,
            # re-execution) clears the failure row again
            conn.executemany(
                "DELETE FROM task_failures "
                "WHERE campaign_id = ? AND idx = ?",
                [(campaign_id, idx) for idx in pending],
            )
            failure_rows = [
                (campaign_id, idx) + failure
                for idx, (_, _, failure) in pending.items()
                if failure is not None
            ]
            if failure_rows:
                conn.executemany(
                    "INSERT OR REPLACE INTO task_failures "
                    "(campaign_id, idx, kind, error, attempts) "
                    "VALUES (?, ?, ?, ?, ?)",
                    failure_rows,
                )
            written = sum(
                len(text) + len(digest or "")
                for text, digest, _ in pending.values()
            )
        if events:
            conn.executemany(
                "INSERT INTO events (campaign_id, ts, event, payload) "
                "VALUES (?, ?, ?, ?)",
                [
                    (campaign_id, ts, event, payload)
                    for ts, event, payload in events
                ],
            )
        _chaos_kill_flush()  # die after the inserts, before the commit
        conn.commit()
        return written

    def discard_campaign(self, campaign: str) -> None:
        conn = self.connection
        conn.execute("DELETE FROM campaigns WHERE name = ?", (campaign,))
        conn.commit()
        if self._campaign is not None and self._campaign[0] == campaign:
            self._campaign = None
            self._campaign_id = None
            self._completed = set()
            self._pending = {}

    def list_campaigns(self) -> List[StoredCampaign]:
        conn = self.connection
        rows = conn.execute(
            "SELECT c.id, c.name, c.fingerprint, c.n_tasks, "
            "       (SELECT COUNT(*) FROM tasks t "
            "        WHERE t.campaign_id = c.id), "
            "       (SELECT COUNT(*) FROM task_failures f "
            "        WHERE f.campaign_id = c.id) "
            "FROM campaigns c ORDER BY c.created_ts",
        ).fetchall()
        return [
            StoredCampaign(
                campaign=name,
                fingerprint=fingerprint,
                n_tasks=n_tasks,
                completed=completed,
                failures=failures,
            )
            for _, name, fingerprint, n_tasks, completed, failures in rows
        ]

    # -- violations and events ------------------------------------------
    def record_violation(self, violation: IntegrityViolation) -> None:
        """Persist one structured integrity violation."""
        conn = self.connection
        conn.execute(
            "INSERT INTO integrity_violations "
            "(campaign_id, ts, kind, idx, detail, expected, observed) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                self._campaign_id,
                time.time(),
                violation.kind,
                violation.index,
                violation.detail,
                violation.expected,
                violation.observed,
            ),
        )
        conn.commit()

    def log_event(self, record: Dict[str, Any]) -> None:
        fields = {
            k: v for k, v in record.items()
            if k not in ("ts", "campaign", "event")
        }
        self._pending_events.append(
            (
                float(record.get("ts", time.time())),
                str(record.get("event", "")),
                json.dumps(fields, separators=(",", ":"), default=str),
            )
        )

    def events(self, campaign: Optional[str] = None) -> Iterator[Dict]:
        """Stored run events, oldest first."""
        conn = self.connection
        query = (
            "SELECT c.name, e.ts, e.event, e.payload "
            "FROM events e LEFT JOIN campaigns c ON c.id = e.campaign_id"
        )
        args: Tuple = ()
        if campaign is not None:
            query += " WHERE c.name = ?"
            args = (campaign,)
        query += " ORDER BY e.id"
        for name, ts, event, payload in conn.execute(query, args):
            record = {"ts": ts, "campaign": name, "event": event}
            record.update(json.loads(payload))
            yield record

    # -- checkpoint migration -------------------------------------------
    def import_checkpoint(self, path: str) -> StoredCampaign:
        """Import a legacy JSON checkpoint file, losslessly.

        The document's records and their **original** digests are
        preserved verbatim, so exporting the campaign again
        (:meth:`checkpoint_document`) reproduces the source document.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CampaignError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("results"), dict)
            or "campaign" not in payload
        ):
            raise CampaignError(
                f"{path} is not a campaign checkpoint document"
            )
        campaign = str(payload["campaign"])
        fingerprint = str(payload.get("fingerprint", ""))
        n_tasks = int(payload.get("n_tasks", 0))
        digests = payload.get("digests")
        if not isinstance(digests, dict):
            digests = {}
        self.open_campaign(campaign, fingerprint, n_tasks, policy="off")
        count = 0
        for index, record in payload["results"].items():
            i = int(index)
            self.put_record(i, record, digest=digests.get(index))
            count += 1
        self.flush()
        return StoredCampaign(
            campaign=campaign,
            fingerprint=fingerprint,
            n_tasks=n_tasks,
            completed=count,
            failures=sum(
                1
                for record in payload["results"].values()
                if isinstance(record, dict)
                and record.get(_FAILURE_MARKER) == 1
            ),
        )

    def checkpoint_document(self, campaign: str) -> Dict[str, Any]:
        """Export one campaign back into the JSON checkpoint format."""
        conn = self.connection
        row = conn.execute(
            "SELECT id, fingerprint, n_tasks FROM campaigns "
            "WHERE name = ? ORDER BY created_ts DESC LIMIT 1",
            (campaign,),
        ).fetchone()
        if row is None:
            raise CampaignError(
                f"no campaign {campaign!r} in {self.path}"
            )
        campaign_id, fingerprint, n_tasks = row
        results: Dict[str, Any] = {}
        digests: Dict[str, str] = {}
        for idx, record_text, digest in conn.execute(
            "SELECT idx, record, digest FROM tasks "
            "WHERE campaign_id = ? ORDER BY idx",
            (campaign_id,),
        ):
            results[str(idx)] = json.loads(record_text)
            if digest is not None:
                digests[str(idx)] = digest
        return {
            "campaign": campaign,
            "fingerprint": fingerprint,
            "n_tasks": n_tasks,
            "results": results,
            "digests": digests,
        }

    # -- result side ----------------------------------------------------
    def save_result(
        self,
        result: Any,
        run: Optional[str] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        from repro.fi.serialization import result_to_document

        if run is None:
            raise CampaignError(
                "the sqlite store needs a run name to save a result"
            )
        data = result_to_document(result)
        payload = json.dumps(data, separators=(",", ":"))
        conn = self.connection
        conn.execute(
            "INSERT OR REPLACE INTO results "
            "(run, kind, payload, digest, created_ts, meta) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                run,
                data.get("kind", ""),
                payload,
                data.get("digest", ""),
                time.time(),
                json.dumps(meta or {}, separators=(",", ":"), default=str),
            ),
        )
        conn.commit()
        self.stats.flushes += 1
        self.stats.bytes_written += len(payload)
        return run

    def load_result(self, run: Optional[str] = None) -> Any:
        from repro.fi.serialization import document_to_result

        if run is None:
            raise CampaignError(
                "the sqlite store needs a run name to load a result"
            )
        row = self.connection.execute(
            "SELECT payload FROM results WHERE run = ?", (run,)
        ).fetchone()
        if row is None:
            known = ", ".join(
                sorted(entry.run for entry in self.list_results())
            )
            raise CampaignError(
                f"no result {run!r} in {self.path}"
                + (f" (known runs: {known})" if known else "")
            )
        return document_to_result(
            json.loads(row[0]), source=f"{self.path}:{run}"
        )

    def result_meta(self, run: str) -> Dict[str, Any]:
        """The metadata saved beside one result."""
        row = self.connection.execute(
            "SELECT meta FROM results WHERE run = ?", (run,)
        ).fetchone()
        if row is None or not row[0]:
            return {}
        return json.loads(row[0])

    def list_results(self) -> List[StoredResult]:
        rows = self.connection.execute(
            "SELECT run, kind, created_ts, digest, meta "
            "FROM results ORDER BY created_ts",
        ).fetchall()
        return [
            StoredResult(
                run=run,
                kind=kind,
                created_ts=created_ts,
                digest=digest,
                meta=json.loads(meta) if meta else {},
            )
            for run, kind, created_ts, digest, meta in rows
        ]
