"""Golden runs and golden-run comparison (paper Section 5.3).

"We produced a Golden Run (GR) for each test case.  Then, we injected
errors ... and monitored the produced output signals. ... The raw data
obtained in the IR's was used in a Golden Run Comparison where the
trace of each signal (input and output) was compared to its
corresponding GR trace.  The comparison stopped as soon as the first
difference between the GR trace and the IR trace was encountered."

This module provides:

* :class:`InvocationLog` — per-module streams of (inputs, outputs) per
  invocation, the raw data needed to attribute *direct* output errors
  to the injected input ("We only took into account the direct errors
  on the outputs");
* :class:`GoldenRun` — one test case's fault-free artefacts: signal
  traces, invocation log, completion tick;
* :class:`GoldenRunStore` — lazily computed, cached golden runs;
* :func:`first_output_differences` — lock-step comparison of a
  module's golden and injected invocation streams, classifying the
  first difference of each output port as *direct* (no other input
  disturbed at that invocation) or *indirect* (the error came back
  through another input — e.g. around the CALC ``i`` feedback loop).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CampaignError
from repro.fi.integrity import run_digest
from repro.model.system import InvocationRecord
from repro.target.simulation import ArrestmentResult, ArrestmentSimulator
from repro.target.testcases import TestCase

__all__ = [
    "InvocationLog",
    "GoldenRun",
    "GoldenRunStore",
    "OutputDifference",
    "first_output_differences",
    "SimulatorFactory",
]

#: builds a fresh simulator for a test case.
SimulatorFactory = Callable[[TestCase], ArrestmentSimulator]

#: one invocation: (tick, inputs in port order, outputs in port order)
Invocation = Tuple[int, Tuple, Tuple]


class InvocationLog:
    """Records every invocation of selected modules during a run.

    Attach to a simulator with :meth:`attach`; restrict recording with
    *modules* to keep injected runs cheap.
    """

    def __init__(self, modules: Optional[Sequence[str]] = None):
        self._filter = set(modules) if modules is not None else None
        self._streams: Dict[str, List[Invocation]] = {}
        self._port_order: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}

    def attach(self, simulator: ArrestmentSimulator) -> "InvocationLog":
        for module in simulator.system.modules():
            if self._filter is None or module.name in self._filter:
                self._port_order[module.name] = (
                    tuple(module.inputs),
                    tuple(module.outputs),
                )
        simulator.add_post_invoke(self._on_invoke)
        return self

    def _on_invoke(self, record: InvocationRecord) -> None:
        order = self._port_order.get(record.module)
        if order is None:
            return
        in_ports, out_ports = order
        self._streams.setdefault(record.module, []).append(
            (
                record.tick,
                tuple(record.inputs[p] for p in in_ports),
                tuple(record.outputs[p] for p in out_ports),
            )
        )

    def stream(self, module: str) -> List[Invocation]:
        return self._streams.get(module, [])

    def prime(self, source: "InvocationLog", before_tick: int) -> None:
        """Seed this log with *source*'s invocations strictly before
        *before_tick*.

        A fast-forwarded run skips the golden prefix, so its own log
        starts at the restored checkpoint; priming with the golden
        log's prefix keeps the lock-step golden comparison aligned.
        Entries are copied (slices of immutable tuples) — *source*
        stays untouched.
        """
        if before_tick <= 0:
            return
        for module in self._port_order:
            entries = source._streams.get(module)
            if not entries:
                continue
            cut = bisect_left(entries, before_tick, key=lambda e: e[0])
            if cut:
                self._streams[module] = entries[:cut]

    def modules(self) -> List[str]:
        return list(self._streams)


@dataclass
class GoldenRun:
    """Fault-free reference artefacts for one test case."""

    test_case: TestCase
    result: ArrestmentResult
    invocations: InvocationLog

    @property
    def completion_tick(self) -> int:
        if self.result.completion_tick is None:
            raise CampaignError(
                f"golden run for {self.test_case.label} did not complete — "
                f"the fault-free system must always arrest the aircraft"
            )
        return self.result.completion_tick

    def digest(self) -> str:
        """Canonical content digest of the golden run's observables.

        Every downstream comparison (first differences, EA reference
        values, resynchronization) derives from these; two golden runs
        with equal digests are interchangeable references.
        """
        return run_digest(self.result)


class GoldenRunStore:
    """Lazily computed cache of golden runs, one per test case."""

    def __init__(self, factory: SimulatorFactory):
        self._factory = factory
        self._cache: Dict[int, GoldenRun] = {}

    def get(self, test_case: TestCase) -> GoldenRun:
        cached = self._cache.get(test_case.case_id)
        if cached is not None:
            return cached
        simulator = self._factory(test_case)
        log = InvocationLog().attach(simulator)
        result = simulator.run()
        if result.verdict.failed:
            raise CampaignError(
                f"golden run for {test_case.label} violates the system "
                f"specification: {result.verdict.describe()}"
            )
        golden = GoldenRun(test_case, result, log)
        self._cache[test_case.case_id] = golden
        return golden

    def preload(self, test_cases: Sequence[TestCase]) -> None:
        for test_case in test_cases:
            self.get(test_case)

    def __len__(self) -> int:
        return len(self._cache)


@dataclass(frozen=True)
class OutputDifference:
    """First difference of one output port between GR and IR."""

    out_port: str
    invocation_index: int
    tick: int
    direct: bool  #: no other input was disturbed at that invocation


def first_output_differences(
    golden: List[Invocation],
    injected: List[Invocation],
    in_ports: Sequence[str],
    out_ports: Sequence[str],
    injected_port: str,
) -> Dict[str, OutputDifference]:
    """Classify the first difference of each output port (Section 5.3).

    Walks the two invocation streams in lock-step.  For every output
    port, the first invocation whose output value differs from the
    golden run is found; the difference counts as *direct* when, at
    that same invocation, no input other than *injected_port* differed
    from the golden run — otherwise the error travelled out through
    another output and back in ("errors that propagated via one of the
    other outputs and then came back"), which the paper excludes.

    Comparison stops at the first difference per output; extra or
    missing invocations (a derailed scheduler) end the walk.
    """
    port_index = {port: idx for idx, port in enumerate(in_ports)}
    if injected_port not in port_index:
        raise CampaignError(
            f"injected port {injected_port!r} is not among inputs {in_ports}"
        )
    injected_idx = port_index[injected_port]
    pending = set(out_ports)
    found: Dict[str, OutputDifference] = {}
    for idx, ((g_tick, g_in, g_out), (i_tick, i_in, i_out)) in enumerate(
        zip(golden, injected)
    ):
        if not pending:
            break
        for k, port in enumerate(out_ports):
            if port not in pending or g_out[k] == i_out[k]:
                continue
            other_inputs_clean = all(
                g_in[j] == i_in[j]
                for j in range(len(in_ports))
                if j != injected_idx
            )
            found[port] = OutputDifference(
                out_port=port,
                invocation_index=idx,
                tick=i_tick,
                direct=other_inputs_clean,
            )
            pending.discard(port)
    return found
