"""Fault-injection substrate (paper Sections 5.3, 6.2, 7).

Bit-flip error models over signals, module state (RAM) and the stack
area; golden-run generation and first-difference comparison; the four
campaign drivers used by the paper's experiments; and the campaign
execution engine (serial/process backends, golden-run cache,
checkpoint/resume, telemetry, adaptive sequential sampling).
"""

from repro.fi.adaptive import (
    SKIPPED,
    AdaptiveSampler,
    AdaptiveStratum,
    StoppingRule,
    StratumReport,
    stopping_rule_from,
)
from repro.fi.campaign import (
    CoverageTriple,
    DetectionCampaign,
    DetectionResult,
    LatencyStats,
    MemoryCampaign,
    MemoryCampaignResult,
    MemoryRunRecord,
    PermeabilityCampaign,
    PermeabilityEstimate,
    RecoveryCampaign,
    RecoveryOutcome,
    RecoveryResult,
)
from repro.fi.executor import (
    CHECKPOINT_SCHEMA_REVISION,
    CampaignConfig,
    CampaignExecutor,
    CampaignTelemetry,
    GoldenRunCache,
    RunEventLog,
    TaskFailure,
    fingerprint_of,
    golden_cache,
)
from repro.fi.integrity import (
    POLICIES,
    IntegrityStats,
    IntegrityViolation,
    RunAuditor,
    canonical_digest,
    field_diff,
    golden_sentinel,
    integrity_stats,
    run_digest,
)
from repro.fi.comparison import (
    PropagationTimeline,
    SignalDivergence,
    compare_runs,
)
from repro.fi.golden import (
    GoldenRun,
    GoldenRunStore,
    InvocationLog,
    OutputDifference,
    first_output_differences,
)
from repro.fi.injector import FaultInjector, InjectionEvent
from repro.fi.memory import CellKind, MemoryLocation, MemoryMap, Region
from repro.fi.serialization import load_json, save_json
from repro.fi.models import (
    DEFAULT_PERIOD_TICKS,
    InputSignalFlip,
    ModuleInputFlip,
    PeriodicMemoryFlip,
)
from repro.fi.snapshot import (
    DEFAULT_CHECKPOINT_STRIDE,
    CheckpointStore,
    CheckpointTrack,
    FastForward,
    FastForwardStats,
    checkpoint_cache,
    ff_stats,
)

__all__ = [
    "AdaptiveSampler",
    "AdaptiveStratum",
    "SKIPPED",
    "StoppingRule",
    "StratumReport",
    "stopping_rule_from",
    "CHECKPOINT_SCHEMA_REVISION",
    "CampaignConfig",
    "CampaignExecutor",
    "CampaignTelemetry",
    "CellKind",
    "CheckpointStore",
    "CheckpointTrack",
    "CoverageTriple",
    "FastForward",
    "FastForwardStats",
    "GoldenRunCache",
    "IntegrityStats",
    "IntegrityViolation",
    "POLICIES",
    "RunAuditor",
    "canonical_digest",
    "checkpoint_cache",
    "ff_stats",
    "field_diff",
    "fingerprint_of",
    "golden_cache",
    "golden_sentinel",
    "integrity_stats",
    "run_digest",
    "DEFAULT_CHECKPOINT_STRIDE",
    "DEFAULT_PERIOD_TICKS",
    "DetectionCampaign",
    "DetectionResult",
    "LatencyStats",
    "MemoryRunRecord",
    "RecoveryCampaign",
    "RecoveryOutcome",
    "RecoveryResult",
    "FaultInjector",
    "GoldenRun",
    "GoldenRunStore",
    "InjectionEvent",
    "InputSignalFlip",
    "InvocationLog",
    "MemoryCampaign",
    "MemoryCampaignResult",
    "MemoryLocation",
    "MemoryMap",
    "ModuleInputFlip",
    "OutputDifference",
    "PeriodicMemoryFlip",
    "PermeabilityCampaign",
    "PermeabilityEstimate",
    "PropagationTimeline",
    "Region",
    "RunEventLog",
    "SignalDivergence",
    "TaskFailure",
    "compare_runs",
    "first_output_differences",
    "load_json",
    "save_json",
]
