#!/usr/bin/env python
"""Criticality on a multi-output target (paper Section 8, Eqs. 3-4).

The baseline arrestment system has a single output, so criticality is
just a scaled impact there.  The telemetry variant adds a second
system output — a downlink status word produced by a REPORT module —
whose operational importance is far below the brake command's.  With
designer-assigned output criticalities (TOC2 = 1.0, STATUS = 0.1) the
criticality ranking *diverges* from the impact ranking: signals that
mostly feed the status word drop, exactly the effect Eq. 3-4 are
designed to capture ("two signals with the same impact may have
different criticalities depending on which outputs they affect the
most").

Permeabilities: the published Table-1 values for the base pairs, the
REPORT module's packing quantization for the new pairs (measurable by
fault injection too — see repro.fi.PermeabilityCampaign with
repro.target.variants.telemetry_simulator).

Run:  python examples/multi_output_criticality.py
"""

from repro import OutputCriticalities, PermeabilityMatrix, SignalGraph
from repro.core.criticality import criticality_ranking
from repro.core.impact import impact_on_all_outputs
from repro.experiments.paper_data import PAPER_TABLE1
from repro.target.variants import (
    build_telemetry_arrestment_system,
    telemetry_simulator,
)
from repro.target import standard_test_cases


#: designer estimates for the REPORT pairs, from its packing layout
REPORT_PERMEABILITIES = {
    "pulscnt": 13 / 16,   # bits >= 3 survive into the status word
    "slow_speed": 0.9,
    "stopped": 0.9,
    "IsValue": 6 / 16,    # bits >= 10 survive
}


def main() -> None:
    system = build_telemetry_arrestment_system()
    graph = SignalGraph(system)

    values = {}
    for pair in system.io_pairs():
        key = (pair.module, pair.in_port, pair.out_port)
        if key in PAPER_TABLE1:
            values[pair] = PAPER_TABLE1[key]
        else:
            values[pair] = REPORT_PERMEABILITIES[pair.in_port]
    matrix = PermeabilityMatrix.from_values(system, values)

    # the variant still arrests identically (REPORT is passive)
    result = telemetry_simulator(standard_test_cases()[12]).run()
    print(f"variant run: {result.verdict.describe()}")
    final_status = result.traces.stream("STATUS")[-1][1]
    print(f"final status word: 0x{final_status:04X} "
          f"(stopped bit set: {bool(final_status & 0x2)})")

    print("\nper-output impacts:")
    print(f"{'signal':<12} {'-> TOC2':>8} {'-> STATUS':>10}")
    for signal in (
        "pulscnt", "IsValue", "slow_speed", "stopped", "SetValue", "mscnt",
    ):
        per_output = impact_on_all_outputs(matrix, graph, signal)
        print(f"{signal:<12} {per_output['TOC2']:>8.3f} "
              f"{per_output['STATUS']:>10.3f}")

    print("\ncriticality rankings under two dependability policies:")
    uniform = OutputCriticalities(graph, {"TOC2": 1.0, "STATUS": 1.0})
    weighted = OutputCriticalities(graph, {"TOC2": 1.0, "STATUS": 0.1})
    rank_u = criticality_ranking(matrix, graph, uniform)
    rank_w = criticality_ranking(matrix, graph, weighted)
    print(f"{'both outputs equal':<34} {'actuator-dominated policy':<34}")
    for (name_u, value_u), (name_w, value_w) in zip(rank_u, rank_w):
        print(f"  {name_u:<14} {value_u:5.3f}         "
              f"  {name_w:<14} {value_w:5.3f}")

    pos = lambda ranking, signal: [n for n, _ in ranking].index(signal)
    print(f"\n'stopped' rank: {pos(rank_u, 'stopped') + 1} (uniform) -> "
          f"{pos(rank_w, 'stopped') + 1} (actuator-dominated): a signal "
          f"that mostly disrupts the downlink stops competing for EDM "
          f"budget once the downlink's criticality is set honestly.")


if __name__ == "__main__":
    main()
