#!/usr/bin/env python
"""Export the paper's figures as Graphviz DOT, plus the module profile.

Produces, in the current directory:

* ``fig1_structure.dot``  — the software structure (Fig. 1)
* ``fig4_impact_tree.dot`` — the pulscnt impact tree with weights (Fig. 4)
* ``fig5_exposure.dot``   — the exposure profile (Fig. 5)
* ``fig6_impact.dot``     — the impact profile (Fig. 6)
* ``backtrack_toc2.dot``  — the backtrack tree of TOC2 (Section 5.2)

Render with graphviz, e.g.: ``dot -Tpng fig1_structure.dot -o fig1.png``.

Also prints the module-level profile (rules R1/R2) to stdout.

Run:  python examples/export_figures.py
"""

from pathlib import Path

from repro import SignalGraph, SystemProfile, build_arrestment_system
from repro.core.module_profile import ModuleProfile
from repro.core.trees import build_backtrack_tree, build_impact_tree
from repro.experiments.paper_data import paper_matrix
from repro.viz import profile_to_dot, system_to_dot, tree_to_dot


def main() -> None:
    system = build_arrestment_system()
    graph = SignalGraph(system)
    matrix = paper_matrix(system)
    profile = SystemProfile(matrix, graph, output="TOC2")

    exports = {
        "fig1_structure.dot": system_to_dot(
            system, title="Software structure of the target (Fig. 1)"
        ),
        "fig4_impact_tree.dot": tree_to_dot(
            build_impact_tree(graph, "pulscnt"), matrix,
            title="Impact tree for pulscnt (Fig. 4)",
        ),
        "fig5_exposure.dot": profile_to_dot(
            profile, "exposure", title="Exposure profile (Fig. 5)"
        ),
        "fig6_impact.dot": profile_to_dot(
            profile, "impact", title="Impact profile (Fig. 6)"
        ),
        "backtrack_toc2.dot": tree_to_dot(
            build_backtrack_tree(graph, "TOC2"), matrix,
            title="Backtrack tree of TOC2",
        ),
    }
    for filename, dot in exports.items():
        Path(filename).write_text(dot)
        print(f"wrote {filename} ({len(dot.splitlines())} lines)")

    print()
    print(ModuleProfile(matrix).render())


if __name__ == "__main__":
    main()
