#!/usr/bin/env python
"""Quickstart: profile the aircraft arrestment system.

Builds the paper's six-module target system, runs one fault-free
arrestment, and then applies the full analysis framework — exposure,
impact, and all three placement strategies — to the paper's published
permeability values (Table 1).  Runs in a couple of seconds; no fault
injection involved.

Run:  python examples/quickstart.py
"""

from repro import (
    SignalGraph,
    all_impacts,
    all_signal_exposures,
    build_arrestment_system,
    eh_placement,
    extended_placement,
    pa_placement,
)
from repro.core.profile import SystemProfile
from repro.experiments.paper_data import paper_matrix
from repro.target import ArrestmentSimulator, standard_test_cases


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Simulate one arrestment (mid-envelope: 14 t at 55 m/s).
    # ------------------------------------------------------------------
    test_case = standard_test_cases()[12]
    result = ArrestmentSimulator(test_case).run()
    print(f"arrestment {test_case.label}:")
    print(f"  stopped after {result.stop_distance_m:.1f} m "
          f"in {result.stop_time_s:.2f} s")
    print(f"  verdict: {result.verdict.describe()}")

    # ------------------------------------------------------------------
    # 2. Analyse propagation and effect on the published permeabilities.
    # ------------------------------------------------------------------
    system = build_arrestment_system()
    graph = SignalGraph(system)
    matrix = paper_matrix(system)

    print("\nsignal error exposures (X_s, paper Table 2):")
    for name, value in sorted(
        all_signal_exposures(matrix).items(),
        key=lambda item: -(item[1] if item[1] is not None else -1),
    ):
        shown = "n/a " if value is None else f"{value:.3f}"
        print(f"  {name:<12} {shown}")

    print("\nimpacts on TOC2 (paper Table 5):")
    for name, value in sorted(
        all_impacts(matrix, graph, "TOC2").items(),
        key=lambda item: -(item[1] if item[1] is not None else -1),
    ):
        shown = "n/a " if value is None else f"{value:.3f}"
        print(f"  {name:<12} {shown}")

    # ------------------------------------------------------------------
    # 3. The three placement strategies.
    # ------------------------------------------------------------------
    print()
    print(eh_placement(system).render())
    print()
    print(pa_placement(matrix, graph).render())
    print()
    print(
        extended_placement(
            matrix, graph, impact_threshold=0.10, output="TOC2",
            memory_error_model=True, self_permeability_threshold=0.8,
        ).render()
    )

    # ------------------------------------------------------------------
    # 4. The two profile figures.
    # ------------------------------------------------------------------
    print()
    print(SystemProfile(matrix, graph, output="TOC2").render())


if __name__ == "__main__":
    main()
