#!/usr/bin/env python
"""From detection to containment: recovery wrappers (ERMs).

The paper's rules reason about EDM *and* ERM placement, but its
experiments only measure detection.  This example closes the loop:
the same executable assertions, at the same (extended-framework)
locations, are upgraded to containment wrappers that substitute the
last good value when they fire — and we measure how many
specification failures that prevents under the harsher error model.

Runs a few hundred simulated arrestments (~2 minutes).

Run:  python examples/recovery_wrappers.py
"""

from repro.edm import EA_BY_NAME, RecoveryPolicy
from repro.fi import MemoryMap, RecoveryCampaign, Region
from repro.target import ArrestmentSimulator, standard_test_cases


def main() -> None:
    test_cases = standard_test_cases()[::8]
    probe = ArrestmentSimulator(test_cases[0])
    locations = MemoryMap(probe.system).locations()[::3]

    print(f"running {len(locations)} locations x {len(test_cases)} cases, "
          f"each twice (detect-only vs containment)...")
    campaign = RecoveryCampaign(
        ArrestmentSimulator,
        test_cases,
        list(EA_BY_NAME.values()),
        locations=locations,
        seed=42,
        # counters/sequences hold the last good value; the continuous
        # signals clamp into their specified range first
        policies={
            "EA1": RecoveryPolicy.CLAMP_TO_SPEC,
            "EA2": RecoveryPolicy.CLAMP_TO_SPEC,
            "EA7": RecoveryPolicy.CLAMP_TO_SPEC,
        },
    )
    result = campaign.run()

    print(f"\n{'area':<7} {'fail rate (detect-only)':>24} "
          f"{'fail rate (containment)':>24}")
    for label, region in (
        ("RAM", Region.RAM), ("Stack", Region.STACK), ("Total", None),
    ):
        base = result.failure_rate(False, region)
        contained = result.failure_rate(True, region)
        print(f"{label:<7} {base:>24.3f} {contained:>24.3f}")

    prevented = result.failures_prevented()
    introduced = result.failures_introduced()
    detected_runs = sum(1 for o in result.outcomes if o.detected)
    total_actions = sum(o.recovery_actions for o in result.outcomes)
    print(f"\nruns: {len(result.outcomes)}  "
          f"(detected in {detected_runs})")
    print(f"failures prevented by containment : {prevented}")
    print(f"failures introduced by containment: {introduced}")
    print(f"total containment interventions   : {total_actions}")
    print("\nNote the asymmetry the placement analysis predicts: "
          "containment can only act where detection reaches — errors "
          "in unguarded signals (booleans, TOC2) fail exactly as "
          "before.")


if __name__ == "__main__":
    main()
