#!/usr/bin/env python
"""Profiling a second target: the water-tank level controller.

The paper's future work asks whether the framework generalizes beyond
the arrestment system.  This example runs the whole pipeline on the
library's built-in second target — structurally different (parallel
sensor chains, feed-forward control, two outputs, continuous mission):

1. fault-injection permeability estimation;
2. exposure / impact / criticality analysis (two outputs of different
   importance: the valve command vs. the alarm lamp);
3. PA placement of the tank's EA catalogue.

Runs ~550 simulated missions (~1 minute).

Run:  python examples/watertank_profiling.py
"""

from repro import OutputCriticalities, SignalGraph, pa_placement
from repro.analysis import matrix_from_estimate
from repro.core.criticality import criticality_ranking
from repro.core.exposure import all_signal_exposures
from repro.core.impact import impact_on_all_outputs
from repro.core.profile import SystemProfile
from repro.fi import PermeabilityCampaign
from repro.watertank import WaterTankSimulator, standard_tank_cases


def main() -> None:
    cases = standard_tank_cases()
    print(f"estimating permeabilities over {len(cases)} missions "
          f"(fault injection)...")
    estimate = PermeabilityCampaign(
        WaterTankSimulator, cases, runs_per_input=12, seed=42
    ).run()
    probe = WaterTankSimulator(cases[0])
    matrix = matrix_from_estimate(probe.system, estimate)
    graph = SignalGraph(probe.system)

    print("\nper-pair permeabilities:")
    for pair, value in matrix.items():
        print(f"  {pair.label:<18} {pair.in_signal:>11} -> "
              f"{pair.out_signal:<12} {value:.3f}")

    print("\nsignal exposures:")
    for name, value in sorted(
        all_signal_exposures(matrix).items(),
        key=lambda kv: -(kv[1] if kv[1] is not None else -1),
    ):
        shown = " n/a" if value is None else f"{value:.3f}"
        print(f"  {name:<12} {shown}")

    print("\nimpacts per output:")
    print(f"  {'signal':<12} {'-> VALVE_POS':>13} {'-> ALARM_OUT':>13}")
    for signal in ("level_f", "inflow_rate", "valve_cmd", "ticks"):
        per_out = impact_on_all_outputs(matrix, graph, signal)
        print(f"  {signal:<12} {per_out['VALVE_POS']:>13.3f} "
              f"{per_out['ALARM_OUT']:>13.3f}")

    criticalities = OutputCriticalities(
        graph, {"VALVE_POS": 1.0, "ALARM_OUT": 0.6}
    )
    print("\ncriticality ranking (valve 1.0, alarm 0.6):")
    for name, value in criticality_ranking(matrix, graph, criticalities):
        print(f"  {name:<12} {value:.3f}")

    print()
    print(pa_placement(matrix, graph).render())
    print()
    print(SystemProfile(
        matrix, graph, output="VALVE_POS", criticalities=criticalities,
    ).render())


if __name__ == "__main__":
    main()
