#!/usr/bin/env python
"""Applying the framework to your own modular software.

The analysis framework is "developed for generic modular black-box
software" (paper Section 11) — it is not tied to the arrestment
target.  This example profiles a small engine-management system with
*two* outputs of different importance, which is where the criticality
measure (Eqs. 3-4) earns its keep: two signals with similar impact
can have very different criticalities depending on which outputs they
affect.

The permeabilities here come from the designer's unit-level analysis
(they could equally be estimated by fault injection, as in
examples/placement_comparison.py).

Run:  python examples/custom_system.py
"""

from repro import (
    FunctionModule,
    OutputCriticalities,
    PermeabilityMatrix,
    SignalGraph,
    SignalRole,
    SignalSpec,
    SignalType,
    SystemModel,
    SystemProfile,
    all_criticalities,
    all_impacts,
    build_backtrack_tree,
    extended_placement,
)


def build_engine_controller() -> SystemModel:
    """A 4-module engine controller.

    RPM/TEMP sensors -> SENSE -> {speed, temp_ok};
    speed + pedal -> GOV -> fuel_cmd (actuator, critical);
    speed + temp_ok -> DIAG -> warn_lamp (diagnostic, not critical).
    """
    system = SystemModel("engine-controller")
    system.add_signal(SignalSpec(
        "RPM", role=SignalRole.SYSTEM_INPUT, width=16))
    system.add_signal(SignalSpec(
        "TEMP", role=SignalRole.SYSTEM_INPUT, width=10))
    system.add_signal(SignalSpec(
        "PEDAL", role=SignalRole.SYSTEM_INPUT, width=10))
    system.add_signal(SignalSpec("speed", width=16))
    system.add_signal(SignalSpec("temp_ok", SignalType.BOOL, width=8))
    system.add_signal(SignalSpec(
        "fuel_cmd", role=SignalRole.SYSTEM_OUTPUT, width=16))
    system.add_signal(SignalSpec(
        "warn_lamp", role=SignalRole.SYSTEM_OUTPUT, width=8,
        sig_type=SignalType.BOOL))

    system.add_module(FunctionModule(
        "SENSE", inputs=["RPM", "TEMP"], outputs=["speed", "temp_ok"],
        fn=lambda args, state: {
            "speed": args["RPM"] // 4,
            "temp_ok": args["TEMP"] < 900,
        },
    ))
    system.add_module(FunctionModule(
        "GOV", inputs=["speed", "PEDAL"], outputs=["fuel_cmd"],
        fn=lambda args, state: {
            "fuel_cmd": max(0, args["PEDAL"] * 50 - args["speed"]),
        },
    ))
    system.add_module(FunctionModule(
        "DIAG", inputs=["speed", "temp_ok"], outputs=["warn_lamp"],
        fn=lambda args, state: {
            "warn_lamp": (not args["temp_ok"]) or args["speed"] > 15000,
        },
    ))
    system.connect_input("RPM", "SENSE", "RPM")
    system.connect_input("TEMP", "SENSE", "TEMP")
    system.bind_output("speed", "SENSE", "speed")
    system.bind_output("temp_ok", "SENSE", "temp_ok")
    system.connect_input("speed", "GOV", "speed")
    system.connect_input("PEDAL", "GOV", "PEDAL")
    system.bind_output("fuel_cmd", "GOV", "fuel_cmd")
    system.connect_input("speed", "DIAG", "speed")
    system.connect_input("temp_ok", "DIAG", "temp_ok")
    system.bind_output("warn_lamp", "DIAG", "warn_lamp")
    system.validate()
    return system


def main() -> None:
    system = build_engine_controller()
    graph = SignalGraph(system)

    # designer-estimated permeabilities per input/output pair
    matrix = PermeabilityMatrix(system)
    matrix.update({
        ("SENSE", 1, 1): 0.90,  # RPM -> speed: straight scaling
        ("SENSE", 1, 2): 0.00,  # RPM does not affect temp_ok
        ("SENSE", 2, 1): 0.00,
        ("SENSE", 2, 2): 0.15,  # TEMP -> temp_ok: threshold masks a lot
        ("GOV", 1, 1): 0.80,    # speed -> fuel_cmd
        ("GOV", 2, 1): 0.85,    # PEDAL -> fuel_cmd
        ("DIAG", 1, 1): 0.05,   # speed -> warn_lamp: threshold
        ("DIAG", 2, 1): 0.60,   # temp_ok -> warn_lamp
    })

    # the actuator command is critical; the warning lamp much less so
    criticalities = OutputCriticalities(
        graph, {"fuel_cmd": 1.0, "warn_lamp": 0.2}
    )

    print("impacts per output:")
    for signal in ("speed", "temp_ok", "RPM", "TEMP", "PEDAL"):
        impacts = all_impacts(matrix, graph, "fuel_cmd")
        lamp = all_impacts(matrix, graph, "warn_lamp")
        print(f"  {signal:<8} fuel_cmd={impacts[signal]:.3f}  "
              f"warn_lamp={lamp[signal]:.3f}")

    print("\ntotal criticalities (impact scaled by output importance):")
    for signal, value in sorted(
        all_criticalities(matrix, graph, criticalities).items(),
        key=lambda item: -(item[1] if item[1] is not None else -1),
    ):
        if value is not None:
            print(f"  {signal:<8} {value:.3f}")
    print("  -> temp_ok has decent impact on warn_lamp, but the lamp's")
    print("     low criticality keeps temp_ok's total criticality low.")

    print("\nbacktrack tree of fuel_cmd:")
    print(build_backtrack_tree(graph, "fuel_cmd").render())

    placement = extended_placement(
        matrix, graph,
        exposure_threshold=0.5,
        criticalities=criticalities,
        criticality_threshold=0.25,
    )
    print()
    print(placement.render())

    print()
    print(SystemProfile(
        matrix, graph, output="fuel_cmd", criticalities=criticalities
    ).render())


if __name__ == "__main__":
    main()
