#!/usr/bin/env python
"""EH vs. PA placement: resources and coverage (paper Sections 5-6).

End-to-end miniature of the paper's first comparison:

1. estimate the error permeabilities of the target by fault injection
   at the module inputs (golden-run comparison, direct errors only);
2. select EA locations with the PA approach and compare against the
   EH baseline;
3. compare memory / execution-time costs (Table 3);
4. measure detection coverage for errors at the system inputs and
   confirm the headline: the PA-set detects exactly what the EH-set
   detects, at ~40 % lower cost.

Runs a few hundred simulated arrestments (~1-2 minutes).

Run:  python examples/placement_comparison.py
"""

from repro import SignalGraph, eh_placement, pa_placement
from repro.analysis import matrix_from_estimate
from repro.edm import (
    EA_BY_NAME,
    assertion_names_for_signals,
    compare_costs,
    cost_of_signals,
)
from repro.fi import DetectionCampaign, PermeabilityCampaign
from repro.target import ArrestmentSimulator, standard_test_cases


def main() -> None:
    test_cases = standard_test_cases()[::6]  # five envelope points

    # ------------------------------------------------------------------
    # 1. Propagation analysis by fault injection.
    # ------------------------------------------------------------------
    print("estimating error permeabilities (fault injection)...")
    campaign = PermeabilityCampaign(
        ArrestmentSimulator, test_cases, runs_per_input=12, seed=42
    )
    estimate = campaign.run()
    probe = ArrestmentSimulator(test_cases[0])
    matrix = matrix_from_estimate(probe.system, estimate)

    # ------------------------------------------------------------------
    # 2. Placement: heuristic baseline vs. systematic PA selection.
    # ------------------------------------------------------------------
    eh = eh_placement(probe.system)
    pa = pa_placement(matrix, SignalGraph(probe.system))
    print(f"\nEH-set ({len(eh.selected)} signals): {sorted(eh.selected)}")
    print(f"PA-set ({len(pa.selected)} signals): {sorted(pa.selected)}")
    print(f"PA is a subset of EH: {pa.is_subset_of(eh)}")

    # ------------------------------------------------------------------
    # 3. Resource comparison (paper Table 3).
    # ------------------------------------------------------------------
    eh_cost = cost_of_signals(eh.selected)
    pa_cost = cost_of_signals(pa.selected)
    savings = compare_costs(eh_cost, pa_cost)
    print(f"\nEH-set memory: {eh_cost.rom_bytes} B ROM + "
          f"{eh_cost.ram_bytes} B RAM")
    print(f"PA-set memory: {pa_cost.rom_bytes} B ROM + "
          f"{pa_cost.ram_bytes} B RAM")
    print(f"memory saving: {savings['memory_saving'] * 100:.0f} %   "
          f"execution-time saving: "
          f"{savings['execution_saving'] * 100:.0f} %")

    # ------------------------------------------------------------------
    # 4. Coverage under the input error model (paper Table 4).
    # ------------------------------------------------------------------
    print("\nmeasuring detection coverage for sensor errors...")
    detection = DetectionCampaign(
        ArrestmentSimulator, test_cases, list(EA_BY_NAME.values()),
        runs_per_signal=25, seed=42,
    ).run()
    eh_eas = assertion_names_for_signals(eh.selected)
    pa_eas = assertion_names_for_signals(pa.selected)
    print(f"{'signal':<8} {'n_err':>6} {'EH cov':>8} {'PA cov':>8}")
    for target in detection.targets:
        print(
            f"{target:<8} {detection.n_err[target]:>6} "
            f"{detection.total_coverage(target, eh_eas):>8.3f} "
            f"{detection.total_coverage(target, pa_eas):>8.3f}"
        )
    eh_total = detection.combined(eh_eas)["total"]
    pa_total = detection.combined(pa_eas)["total"]
    print(f"{'All':<8} {sum(detection.n_err.values()):>6} "
          f"{eh_total:>8.3f} {pa_total:>8.3f}")
    print(f"\nPA coverage equals EH coverage: {eh_total == pa_total} "
          f"-> same protection at "
          f"{savings['memory_saving'] * 100:.0f} % lower memory cost")


if __name__ == "__main__":
    main()
