#!/usr/bin/env python
"""Error-model sensitivity (paper Sections 7-10).

Shows the paper's second finding and its resolution:

1. under periodic bit flips into RAM and stack (the harsher error
   model), the propagation-analysis placement loses a large part of
   the EH-set's coverage;
2. the extended framework (impact + criticality, memory-error-model
   rule) systematically re-derives the EH-level placement, restoring
   coverage.

Runs a few hundred simulated arrestments (~1-2 minutes).

Run:  python examples/error_model_sensitivity.py
"""

from repro import SignalGraph, extended_placement
from repro.analysis import matrix_from_estimate
from repro.edm import EA_BY_NAME, EH_SET, PA_SET, assertion_names_for_signals
from repro.fi import MemoryCampaign, MemoryMap, PermeabilityCampaign, Region
from repro.target import ArrestmentSimulator, standard_test_cases


def main() -> None:
    test_cases = standard_test_cases()[::8]

    # ------------------------------------------------------------------
    # 1. The harsher error model: periodic flips into RAM and stack.
    # ------------------------------------------------------------------
    probe = ArrestmentSimulator(test_cases[0])
    locations = MemoryMap(probe.system).locations()[::2]
    print(f"injecting into {len(locations)} RAM/stack locations, "
          f"{len(test_cases)} test cases each...")
    memory = MemoryCampaign(
        ArrestmentSimulator, test_cases, list(EA_BY_NAME.values()),
        locations=locations, seed=42,
    ).run()

    eh_eas = assertion_names_for_signals(EH_SET)
    pa_eas = assertion_names_for_signals(PA_SET)
    print(f"\n{'area':<7} {'EH c_tot':>9} {'PA c_tot':>9} "
          f"{'EH c_fail':>10} {'PA c_fail':>10}")
    for label, region in (
        ("RAM", Region.RAM), ("Stack", Region.STACK), ("Total", None),
    ):
        eh = memory.coverage(eh_eas, region)
        pa = memory.coverage(pa_eas, region)
        print(f"{label:<7} {eh.c_tot:>9.3f} {pa.c_tot:>9.3f} "
              f"{eh.c_fail:>10.3f} {pa.c_fail:>10.3f}")
    eh_total = memory.coverage(eh_eas, None).c_tot
    pa_total = memory.coverage(pa_eas, None).c_tot
    print(f"\nPA-set retains only {pa_total / eh_total * 100:.0f} % of the "
          f"EH-set's coverage under this error model")

    # ------------------------------------------------------------------
    # 2. The extended framework recovers the placement systematically.
    # ------------------------------------------------------------------
    print("\nre-deriving the placement with effect analysis...")
    estimate = PermeabilityCampaign(
        ArrestmentSimulator, test_cases, runs_per_input=12, seed=42
    ).run()
    matrix = matrix_from_estimate(probe.system, estimate)
    extended = extended_placement(
        matrix, SignalGraph(probe.system),
        impact_threshold=0.10, output="TOC2",
        memory_error_model=True, self_permeability_threshold=0.8,
    )
    print(extended.render())
    ext_eas = assertion_names_for_signals(extended.selected)
    ext_total = memory.coverage(ext_eas, None).c_tot
    print(f"\nextended-set coverage: {ext_total:.3f} "
          f"(EH: {eh_total:.3f}, PA: {pa_total:.3f})")
    print(f"extended selection equals the EH-set: "
          f"{set(extended.selected) == set(EH_SET)}")


if __name__ == "__main__":
    main()
