"""Legacy setup shim.

The execution environment is offline and has no ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
This shim lets ``pip install -e . --no-use-pep517`` work; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
